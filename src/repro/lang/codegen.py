"""Code generation: annotated Mini-C AST to node-IR :class:`Program`.

Conventions (see :mod:`repro.isa.registers`):

* arguments in r1..r6, return value in r0;
* scratch registers r8..r27 are caller-saved, managed as a free list and
  spilled to dedicated frame slots around calls;
* local registers r28..r59 hold unaddressed scalar locals and are
  callee-saved;
* ``gp`` holds the global-segment base, ``sp`` the stack pointer; there is
  no frame pointer (``sp`` is fixed after the prologue).

Calls use the CALL/RET terminators' hardware link stack, so no return
address register exists.  ``char`` is unsigned; loads of it zero-extend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..isa import node as nd
from ..isa.node import Imm, Node, Operand, Reg
from ..isa.ops import AluOp, MemWidth, SyscallOp
from ..isa.registers import (
    ARG_REGS,
    GP,
    LOCAL_FIRST,
    LOCAL_LAST,
    RV,
    SCRATCH_FIRST,
    SCRATCH_LAST,
    SP,
)
from ..isa.intmath import wrap32
from ..isa import intmath
from ..program.block import BasicBlock
from ..program.program import GLOBAL_BASE, Program
from . import ast_nodes as ast
from .ctypes import CType
from .sema import SemaResult
from .symbols import FunctionInfo, Symbol

#: Top of the simulated stack; also the size of simulated memory.
STACK_TOP = 0x200000

_NUM_SCRATCH = SCRATCH_LAST - SCRATCH_FIRST + 1
_SPILL_AREA = 0
_SPILL_SIZE = 4 * _NUM_SCRATCH
_SAVE_AREA = _SPILL_AREA + _SPILL_SIZE
_SAVE_SIZE = 4 * (LOCAL_LAST - LOCAL_FIRST + 1)
_LOCALS_AREA = _SAVE_AREA + _SAVE_SIZE

_BIN_ALU = {
    "+": AluOp.ADD,
    "-": AluOp.SUB,
    "*": AluOp.MUL,
    "/": AluOp.DIV,
    "%": AluOp.MOD,
    "&": AluOp.AND,
    "|": AluOp.OR,
    "^": AluOp.XOR,
    "<<": AluOp.SHL,
    ">>": AluOp.SHR,
}
_CMP_ALU = {
    "<": AluOp.SLT,
    "<=": AluOp.SLE,
    "==": AluOp.SEQ,
    "!=": AluOp.SNE,
    ">": AluOp.SGT,
    ">=": AluOp.SGE,
}
_COMMUTATIVE = frozenset(
    {AluOp.ADD, AluOp.MUL, AluOp.AND, AluOp.OR, AluOp.XOR, AluOp.SEQ, AluOp.SNE}
)
_SWAPPED_CMP = {
    AluOp.SLT: AluOp.SGT,
    AluOp.SLE: AluOp.SGE,
    AluOp.SGT: AluOp.SLT,
    AluOp.SGE: AluOp.SLE,
}
_POW2_SHIFT = {2: 1, 4: 2, 8: 3}


class CodegenError(Exception):
    """Internal code-generation failure (indicates a compiler bug)."""


class Value:
    """An expression result: an immediate or a value in a register.

    ``is_scratch`` marks values occupying a scratch register that the
    holder must release; register-variable reads are *borrowed* (not
    scratch) and must not be written through.
    """

    __slots__ = ("imm", "reg", "is_scratch")

    def __init__(self, *, imm: Optional[int] = None, reg: Optional[int] = None,
                 is_scratch: bool = False):
        self.imm = imm
        self.reg = reg
        self.is_scratch = is_scratch

    @property
    def is_imm(self) -> bool:
        return self.imm is not None

    def operand(self) -> Operand:
        """This value as a node operand (register or immediate)."""
        if self.is_imm:
            return Imm(self.imm)
        return Reg(self.reg)


class LValue:
    """A storage location an assignment can write to."""

    __slots__ = ("kind", "reg", "base", "offset", "width", "ctype", "scratch")

    def __init__(self, kind: str, ctype: CType, *, reg: Optional[int] = None,
                 base: Optional[int] = None, offset: int = 0,
                 scratch: Optional[int] = None):
        self.kind = kind  # "reg" or "mem"
        self.ctype = ctype
        self.reg = reg
        self.base = base
        self.offset = offset
        self.width = MemWidth.BYTE if ctype.is_char else MemWidth.WORD
        #: scratch register holding the address base, to release after use
        self.scratch = scratch


class GlobalLayout:
    """Addresses of globals and interned strings in the data segment."""

    def __init__(self, sema: SemaResult):
        self.offsets: Dict[str, int] = {}  # name -> offset from GLOBAL_BASE
        data = bytearray()

        def _align(alignment: int) -> None:
            while len(data) % alignment:
                data.append(0)

        # Globals first, in declaration order.
        for symbol in sema.global_scope.symbols.values():
            _align(symbol.ctype.align())
            self.offsets[symbol.name] = len(data)
            data.extend(b"\x00" * symbol.ctype.size())
        # Interned strings after the globals.
        for label, blob in sema.strings.items():
            self.offsets[label] = len(data)
            data.extend(blob)
        _align(4)

        # Fill initialisers (needs string offsets, hence a second pass).
        for name, init in sema.global_inits.items():
            symbol = sema.global_scope.symbols[name]
            offset = self.offsets[name]
            if isinstance(init, tuple) and init[0] == "string_ref":
                address = GLOBAL_BASE + self.offsets[init[1]]
                data[offset:offset + 4] = (address & 0xFFFFFFFF).to_bytes(4, "little")
            elif isinstance(init, bytes):
                data[offset:offset + len(init)] = init
            elif isinstance(init, list):
                # Flattened (row-major) scalars: scale by the innermost
                # element size, not the outer dimension's row size.
                element = symbol.ctype.element
                while element.is_array:
                    element = element.element
                esize = element.size()
                for i, value in enumerate(init):
                    raw = wrap32(value) & 0xFFFFFFFF
                    data[offset + i * esize:offset + (i + 1) * esize] = (
                        raw.to_bytes(4, "little")[:esize]
                    )
            else:
                raw = wrap32(int(init)) & 0xFFFFFFFF
                size = symbol.ctype.size()
                data[offset:offset + size] = raw.to_bytes(4, "little")[:size]

        self.data = bytes(data)
        self.size = len(data)

    def offset_of(self, name: str) -> int:
        return self.offsets[name]


class FunctionCodegen:
    """Generates the blocks of a single function."""

    def __init__(self, func: ast.FunctionDecl, sema: SemaResult,
                 layout: GlobalLayout):
        self.func = func
        self.sema = sema
        self.layout = layout
        self.blocks: List[BasicBlock] = []
        self.nodes: List[Node] = []
        self.current_label: Optional[str] = None
        self._label_counter = 0
        self._free_scratch = list(range(SCRATCH_LAST, SCRATCH_FIRST - 1, -1))
        self._live_scratch: set = set()
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []

        # Assign homes to locals/params up front (sema collected them all).
        self.reg_home: Dict[Symbol, int] = {}
        self.stack_home: Dict[Symbol, int] = {}
        next_reg = LOCAL_FIRST
        locals_offset = _LOCALS_AREA
        for symbol in sema.function_locals.get(func.name, []):
            if symbol.ctype.is_scalar and not symbol.addr_taken and next_reg <= LOCAL_LAST:
                self.reg_home[symbol] = next_reg
                next_reg += 1
            else:
                align = symbol.ctype.align()
                locals_offset = (locals_offset + align - 1) // align * align
                self.stack_home[symbol] = locals_offset
                locals_offset += symbol.ctype.size()
        self.frame_size = (locals_offset + 3) // 4 * 4
        self.entry_label = f"f_{func.name}"
        self.epilogue_label = self._new_label("epi")

    # ------------------------------------------------------------------
    # Block plumbing
    # ------------------------------------------------------------------
    def _new_label(self, hint: str = "L") -> str:
        self._label_counter += 1
        return f"f_{self.func.name}${hint}{self._label_counter}"

    def _start(self, label: str) -> None:
        if self.current_label is not None:
            raise CodegenError("starting a block while one is open")
        self.current_label = label
        self.nodes = []

    def _emit(self, node: Node) -> None:
        if self.current_label is None:
            # Unreachable code (after return/break); emit into a dead block
            # so the structure stays valid; opt removes it later.
            self._start(self._new_label("dead"))
        self.nodes.append(node)

    def _close(self, terminator: Node) -> None:
        if self.current_label is None:
            self._start(self._new_label("dead"))
        self.blocks.append(BasicBlock(self.current_label, self.nodes, terminator))
        self.current_label = None
        self.nodes = []

    def _goto(self, label: str) -> None:
        """Close the open block (if any) with a jump to ``label``."""
        if self.current_label is not None:
            self._close(nd.jump(label))

    # ------------------------------------------------------------------
    # Scratch register allocation (free list)
    # ------------------------------------------------------------------
    def _alloc_scratch(self) -> int:
        if not self._free_scratch:
            raise CodegenError(
                f"expression too deep in {self.func.name}(): out of scratch registers"
            )
        reg = self._free_scratch.pop()
        self._live_scratch.add(reg)
        return reg

    def _release_reg(self, reg: Optional[int]) -> None:
        if reg is None:
            return
        if reg not in self._live_scratch:
            raise CodegenError(f"double release of scratch r{reg}")
        self._live_scratch.discard(reg)
        self._free_scratch.append(reg)

    def _release(self, value: Union[Value, LValue, None]) -> None:
        if value is None:
            return
        if isinstance(value, Value):
            if value.is_scratch:
                self._release_reg(value.reg)
        elif isinstance(value, LValue):
            self._release_reg(value.scratch)

    def _materialize(self, value: Value) -> Value:
        """Force a value into a register (immediates get a scratch movi)."""
        if not value.is_imm:
            return value
        reg = self._alloc_scratch()
        self._emit(nd.movi(reg, value.imm))
        return Value(reg=reg, is_scratch=True)

    def _result_reg(self, *reusable: Value) -> int:
        """Pick a destination: reuse the first scratch operand, else allocate.

        The reused operand's register is *kept allocated* and becomes the
        result; any other scratch operands remain the caller's to release.
        """
        for value in reusable:
            if value is not None and not value.is_imm and value.is_scratch:
                return value.reg
        return self._alloc_scratch()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> List[BasicBlock]:
        """Generate and return all blocks of the function."""
        self._start(self.entry_label)
        if self.frame_size:
            self._emit(nd.alu(AluOp.SUB, SP, Reg(SP), Imm(self.frame_size)))
        for reg in sorted(self.reg_home.values()):
            slot = _SAVE_AREA + 4 * (reg - LOCAL_FIRST)
            self._emit(nd.store(Reg(reg), SP, slot))
        for index, param in enumerate(self.func.params):
            arg_reg = ARG_REGS[index]
            symbol = param.symbol
            if symbol in self.reg_home:
                if symbol.ctype.is_char:
                    self._emit(nd.alu(AluOp.AND, self.reg_home[symbol],
                                      Reg(arg_reg), Imm(255)))
                else:
                    self._emit(nd.mov(self.reg_home[symbol], arg_reg))
            else:
                width = MemWidth.BYTE if symbol.ctype.is_char else MemWidth.WORD
                self._emit(nd.store(Reg(arg_reg), SP, self.stack_home[symbol], width))

        self._gen_block(self.func.body)
        self._goto(self.epilogue_label)

        self._start(self.epilogue_label)
        for reg in sorted(self.reg_home.values()):
            slot = _SAVE_AREA + 4 * (reg - LOCAL_FIRST)
            self._emit(nd.load(reg, SP, slot))
        if self.frame_size:
            self._emit(nd.alu(AluOp.ADD, SP, Reg(SP), Imm(self.frame_size)))
        self._close(nd.ret())
        return self.blocks

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _gen_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._gen_statement(stmt)

    def _gen_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._gen_local_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._release(self._gen_expr_for_effect(stmt.expr))
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._goto(self._break_labels[-1])
        elif isinstance(stmt, ast.Continue):
            self._goto(self._continue_labels[-1])
        else:  # pragma: no cover
            raise CodegenError(f"unhandled statement {type(stmt).__name__}")

    def _gen_local_decl(self, decl: ast.VarDecl) -> None:
        if decl.init is None:
            return
        value = self._gen_expr(decl.init)
        self._store_to_symbol(decl.symbol, value)
        self._release(value)

    def _store_to_symbol(self, symbol: Symbol, value: Value) -> None:
        if symbol in self.reg_home:
            home = self.reg_home[symbol]
            if symbol.ctype.is_char:
                # Register-allocated chars must truncate on write, just as
                # a byte store would.
                self._emit(nd.alu(AluOp.AND, home, value.operand(), Imm(255))
                           if not value.is_imm
                           else nd.movi(home, value.imm & 0xFF))
            else:
                self._emit(nd.alu(AluOp.MOV, home, value.operand()))
        else:
            width = MemWidth.BYTE if symbol.ctype.is_char else MemWidth.WORD
            self._emit(nd.store(value.operand(), SP, self.stack_home[symbol], width))

    def _gen_if(self, stmt: ast.If) -> None:
        then_label = self._new_label("then")
        else_label = self._new_label("else") if stmt.else_body else None
        join_label = self._new_label("join")
        self._gen_cond(stmt.cond, then_label, else_label or join_label)

        self._start(then_label)
        self._gen_statement(stmt.then_body)
        self._goto(join_label)

        if stmt.else_body is not None:
            self._start(else_label)
            self._gen_statement(stmt.else_body)
            self._goto(join_label)

        self._start(join_label)

    def _gen_while(self, stmt: ast.While) -> None:
        head = self._new_label("whead")
        body = self._new_label("wbody")
        exit_ = self._new_label("wexit")
        self._goto(head)
        self._start(head)
        self._gen_cond(stmt.cond, body, exit_)
        self._break_labels.append(exit_)
        self._continue_labels.append(head)
        self._start(body)
        self._gen_statement(stmt.body)
        self._goto(head)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._start(exit_)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        body = self._new_label("dbody")
        cond = self._new_label("dcond")
        exit_ = self._new_label("dexit")
        self._goto(body)
        self._start(body)
        self._break_labels.append(exit_)
        self._continue_labels.append(cond)
        self._gen_statement(stmt.body)
        self._goto(cond)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._start(cond)
        self._gen_cond(stmt.cond, body, exit_)
        self._start(exit_)

    def _gen_for(self, stmt: ast.For) -> None:
        head = self._new_label("fhead")
        body = self._new_label("fbody")
        step = self._new_label("fstep")
        exit_ = self._new_label("fexit")
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        self._goto(head)
        self._start(head)
        if stmt.cond is not None:
            self._gen_cond(stmt.cond, body, exit_)
        else:
            self._goto(body)
        self._break_labels.append(exit_)
        self._continue_labels.append(step)
        self._start(body)
        self._gen_statement(stmt.body)
        self._goto(step)
        self._break_labels.pop()
        self._continue_labels.pop()
        self._start(step)
        if stmt.step is not None:
            self._release(self._gen_expr_for_effect(stmt.step))
        self._goto(head)
        self._start(exit_)

    def _gen_switch(self, stmt: ast.Switch) -> None:
        """Lower a switch to a compare-and-branch dispatch chain.

        Case bodies fall through in declaration order (C semantics);
        ``break`` transfers to the exit label.
        """
        subject = self._materialize(self._gen_expr(stmt.subject))
        exit_label = self._new_label("swend")
        body_labels = [self._new_label("swcase") for _ in stmt.cases]
        default_label = exit_label
        for case, label in zip(stmt.cases, body_labels):
            if case.value is None:
                default_label = label

        # Dispatch chain: one compare block per non-default case.
        for case, label in zip(stmt.cases, body_labels):
            if case.value is None:
                continue
            test = self._alloc_scratch()
            self._emit(nd.alu(AluOp.SEQ, test, Reg(subject.reg),
                              Imm(case.value)))
            self._release_reg(test)
            next_check = self._new_label("swnext")
            self._close(nd.branch(test, label, next_check))
            self._start(next_check)
        self._release(subject)
        self._goto(default_label)

        # Bodies in declaration order; each falls through to the next.
        self._break_labels.append(exit_label)
        for index, (case, label) in enumerate(zip(stmt.cases, body_labels)):
            self._start(label)
            for inner in case.body:
                self._gen_statement(inner)
            next_label = (
                body_labels[index + 1] if index + 1 < len(body_labels)
                else exit_label
            )
            self._goto(next_label)
        self._break_labels.pop()
        self._start(exit_label)

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            value = self._gen_expr(stmt.value)
            self._emit(nd.alu(AluOp.MOV, RV, value.operand()))
            self._release(value)
        self._goto(self.epilogue_label)

    # ------------------------------------------------------------------
    # Conditions (short-circuit lowering)
    # ------------------------------------------------------------------
    def _gen_cond(self, expr: ast.Expr, true_label: str, false_label: str) -> None:
        """Lower ``expr`` as a branch to ``true_label``/``false_label``."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self._new_label("and")
            self._gen_cond(expr.left, mid, false_label)
            self._start(mid)
            self._gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self._new_label("or")
            self._gen_cond(expr.left, true_label, mid)
            self._start(mid)
            self._gen_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._gen_cond(expr.operand, false_label, true_label)
            return
        value = self._materialize(self._gen_expr(expr))
        self._release(value)
        self._close(nd.branch(value.reg, true_label, false_label))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _gen_expr_for_effect(self, expr: ast.Expr) -> Optional[Value]:
        """Evaluate for side effects; result may be discarded."""
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr, need_value=False)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr, need_value=False)
        if isinstance(expr, ast.Call) and expr.ctype.is_void:
            return self._gen_call(expr, need_value=False)
        return self._gen_expr(expr)

    def _gen_expr(self, expr: ast.Expr) -> Value:
        """Evaluate ``expr``; returns a :class:`Value`."""
        if isinstance(expr, ast.IntLiteral):
            return Value(imm=wrap32(expr.value))
        if isinstance(expr, ast.SizeOf):
            return Value(imm=expr.target_type.size())
        if isinstance(expr, ast.StringLiteral):
            return self._gen_global_address(expr.symbol)
        if isinstance(expr, ast.Identifier):
            return self._gen_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._gen_conditional(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr, need_value=True)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr, need_value=True)
        if isinstance(expr, (ast.Index, ast.Member)):
            lvalue = self._gen_lvalue(expr)
            if expr.ctype.is_array:
                # An array-typed element (inner row of a multi-dimensional
                # array, or an array member) decays to its address.
                return self._lvalue_to_address(lvalue)
            return self._load_lvalue(lvalue)
        if isinstance(expr, ast.Call):
            result = self._gen_call(expr, need_value=True)
            if result is None:
                raise CodegenError(f"void call {expr.name}() used as a value")
            return result
        raise CodegenError(f"unhandled expression {type(expr).__name__}")

    def _gen_global_address(self, name: str) -> Value:
        offset = self.layout.offset_of(name)
        reg = self._alloc_scratch()
        self._emit(nd.alu(AluOp.ADD, reg, Reg(GP), Imm(offset)))
        return Value(reg=reg, is_scratch=True)

    def _gen_identifier(self, expr: ast.Identifier) -> Value:
        symbol = expr.symbol
        if isinstance(symbol, FunctionInfo):
            # A function name as a value: its function id (see sema).
            return Value(imm=self.sema.fp_targets[symbol.name])
        if symbol.ctype.is_array:
            # Arrays decay to their address.
            if symbol.kind == "global":
                return self._gen_global_address(symbol.name)
            reg = self._alloc_scratch()
            self._emit(nd.alu(AluOp.ADD, reg, Reg(SP), Imm(self.stack_home[symbol])))
            return Value(reg=reg, is_scratch=True)
        if symbol in self.reg_home:
            return Value(reg=self.reg_home[symbol], is_scratch=False)
        width = MemWidth.BYTE if symbol.ctype.is_char else MemWidth.WORD
        reg = self._alloc_scratch()
        if symbol.kind == "global":
            self._emit(nd.load(reg, GP, self.layout.offset_of(symbol.name), width))
        else:
            self._emit(nd.load(reg, SP, self.stack_home[symbol], width))
        return Value(reg=reg, is_scratch=True)

    # -- lvalues --------------------------------------------------------
    def _gen_lvalue(self, expr: ast.Expr) -> LValue:
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            ctype = symbol.ctype
            if symbol in self.reg_home:
                return LValue("reg", ctype, reg=self.reg_home[symbol])
            if symbol.kind == "global":
                return LValue(
                    "mem", ctype, base=GP, offset=self.layout.offset_of(symbol.name)
                )
            return LValue("mem", ctype, base=SP, offset=self.stack_home[symbol])
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._materialize(self._gen_expr(expr.operand))
            scratch = pointer.reg if pointer.is_scratch else None
            return LValue("mem", expr.ctype, base=pointer.reg, scratch=scratch)
        if isinstance(expr, ast.Index):
            return self._gen_index_lvalue(expr)
        if isinstance(expr, ast.Member):
            return self._gen_member_lvalue(expr)
        raise CodegenError("not an lvalue")  # sema should have caught this

    def _gen_member_lvalue(self, expr: ast.Member) -> LValue:
        """Address a struct member: a constant offset from the object."""
        if expr.is_arrow:
            layout = expr.object.ctype.decay().pointee.struct
            offset, member_type = layout.member(expr.name)
            pointer = self._materialize(self._gen_expr(expr.object))
            scratch = pointer.reg if pointer.is_scratch else None
            return LValue("mem", member_type, base=pointer.reg,
                          offset=offset, scratch=scratch)
        layout = expr.object.ctype.struct
        offset, member_type = layout.member(expr.name)
        base = self._gen_lvalue(expr.object)
        if base.kind != "mem":
            raise CodegenError("struct value not in memory")  # unreachable
        return LValue("mem", member_type, base=base.base,
                      offset=base.offset + offset, scratch=base.scratch)

    def _gen_index_lvalue(self, expr: ast.Index) -> LValue:
        base_type = expr.array.ctype
        element = base_type.element if base_type.is_array else base_type.pointee
        esize = element.size()
        base_value = self._gen_expr(expr.array)
        index_value = self._gen_expr(expr.index)

        if index_value.is_imm:
            offset = wrap32(index_value.imm * esize)
            base_m = self._materialize(base_value)
            scratch = base_m.reg if base_m.is_scratch else None
            return LValue("mem", element, base=base_m.reg, offset=offset,
                          scratch=scratch)

        scaled = self._scale_index(index_value, esize)
        base_m = self._materialize(base_value)
        dest = self._result_reg(scaled, base_m)
        self._emit(nd.alu(AluOp.ADD, dest, Reg(base_m.reg), Reg(scaled.reg)))
        # Release whichever scratch operands did not become the result.
        for value in (scaled, base_m):
            if value.is_scratch and value.reg != dest:
                self._release(value)
        return LValue("mem", element, base=dest, scratch=dest)

    def _scale_index(self, index: Value, esize: int) -> Value:
        """Multiply an index value by the element size."""
        if esize == 1:
            return self._materialize(index)
        if index.is_imm:
            return self._materialize(Value(imm=wrap32(index.imm * esize)))
        dest = self._result_reg(index)
        shift = _POW2_SHIFT.get(esize)
        if shift is not None:
            self._emit(nd.alu(AluOp.SHL, dest, Reg(index.reg), Imm(shift)))
        else:
            self._emit(nd.alu(AluOp.MUL, dest, Reg(index.reg), Imm(esize)))
        return Value(reg=dest, is_scratch=True)

    def _load_lvalue(self, lvalue: LValue) -> Value:
        if lvalue.kind == "reg":
            return Value(reg=lvalue.reg, is_scratch=False)
        if lvalue.scratch is not None:
            # Reuse the address register for the loaded value.
            self._emit(nd.load(lvalue.scratch, lvalue.base, lvalue.offset,
                               lvalue.width))
            return Value(reg=lvalue.scratch, is_scratch=True)
        reg = self._alloc_scratch()
        self._emit(nd.load(reg, lvalue.base, lvalue.offset, lvalue.width))
        return Value(reg=reg, is_scratch=True)

    def _store_lvalue(self, lvalue: LValue, value: Value) -> None:
        if lvalue.kind == "reg":
            if lvalue.ctype.is_char:
                if value.is_imm:
                    self._emit(nd.movi(lvalue.reg, value.imm & 0xFF))
                else:
                    self._emit(nd.alu(AluOp.AND, lvalue.reg, value.operand(),
                                      Imm(255)))
            else:
                self._emit(nd.alu(AluOp.MOV, lvalue.reg, value.operand()))
        else:
            self._emit(nd.store(value.operand(), lvalue.base, lvalue.offset,
                                lvalue.width))

    # -- operators ------------------------------------------------------
    def _gen_unary(self, expr: ast.Unary) -> Value:
        op = expr.op
        if op == "-":
            operand = self._gen_expr(expr.operand)
            if operand.is_imm:
                return Value(imm=wrap32(-operand.imm))
            return self._unary_alu(AluOp.NEG, operand)
        if op == "~":
            operand = self._gen_expr(expr.operand)
            if operand.is_imm:
                return Value(imm=wrap32(~operand.imm))
            return self._unary_alu(AluOp.NOT, operand)
        if op == "!":
            operand = self._gen_expr(expr.operand)
            if operand.is_imm:
                return Value(imm=int(operand.imm == 0))
            dest = self._result_reg(operand)
            self._emit(nd.alu(AluOp.SEQ, dest, Reg(operand.reg), Imm(0)))
            return Value(reg=dest, is_scratch=True)
        if op == "*":
            if expr.ctype.is_function:
                # ``*f`` on a function pointer yields the same value.
                return self._gen_expr(expr.operand)
            return self._load_lvalue(self._gen_lvalue(expr))
        if op == "&":
            return self._gen_address_of(expr.operand)
        raise CodegenError(f"unhandled unary {op!r}")

    def _unary_alu(self, alu_op: AluOp, operand: Value) -> Value:
        operand = self._materialize(operand)
        dest = self._result_reg(operand)
        self._emit(nd.alu(alu_op, dest, Reg(operand.reg)))
        return Value(reg=dest, is_scratch=True)

    def _gen_address_of(self, expr: ast.Expr) -> Value:
        if (
            isinstance(expr, ast.Identifier)
            and isinstance(expr.symbol, FunctionInfo)
        ):
            # ``&f`` and ``f`` are the same function-pointer value.
            return self._gen_identifier(expr)
        return self._lvalue_to_address(self._gen_lvalue(expr))

    def _lvalue_to_address(self, lvalue: LValue) -> Value:
        """Materialise a memory lvalue's address into a register value."""
        if lvalue.kind == "reg":
            raise CodegenError("address of register variable")  # sema prevents
        if lvalue.scratch is not None:
            if lvalue.offset:
                self._emit(nd.alu(AluOp.ADD, lvalue.scratch, Reg(lvalue.base),
                                  Imm(lvalue.offset)))
            return Value(reg=lvalue.scratch, is_scratch=True)
        reg = self._alloc_scratch()
        self._emit(nd.alu(AluOp.ADD, reg, Reg(lvalue.base), Imm(lvalue.offset)))
        return Value(reg=reg, is_scratch=True)

    def _gen_binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_logical_value(expr)
        if op in _CMP_ALU:
            left = self._gen_expr(expr.left)
            right = self._gen_expr(expr.right)
            return self._combine(_CMP_ALU[op], left, right)
        left_type = expr.left.ctype.decay()
        right_type = expr.right.ctype.decay()
        if op == "+" and (left_type.is_pointer or right_type.is_pointer):
            return self._gen_pointer_add(expr, subtract=False)
        if op == "-" and left_type.is_pointer:
            if right_type.is_pointer:
                return self._gen_pointer_diff(expr)
            return self._gen_pointer_add(expr, subtract=True)
        left = self._gen_expr(expr.left)
        right = self._gen_expr(expr.right)
        return self._combine(_BIN_ALU[op], left, right)

    @staticmethod
    def _fold_binary(alu_op: AluOp, a: int, b: int) -> Optional[int]:
        """Constant-fold two immediates; None if the op can't fold."""
        table = {
            AluOp.ADD: lambda: wrap32(a + b),
            AluOp.SUB: lambda: wrap32(a - b),
            AluOp.MUL: lambda: wrap32(a * b),
            AluOp.AND: lambda: wrap32(a & b),
            AluOp.OR: lambda: wrap32(a | b),
            AluOp.XOR: lambda: wrap32(a ^ b),
            AluOp.SHL: lambda: intmath.shl32(a, b),
            AluOp.SHR: lambda: intmath.sar32(a, b),
            AluOp.SHRU: lambda: intmath.shr32(a, b),
            AluOp.SLT: lambda: int(a < b),
            AluOp.SLE: lambda: int(a <= b),
            AluOp.SEQ: lambda: int(a == b),
            AluOp.SNE: lambda: int(a != b),
            AluOp.SGT: lambda: int(a > b),
            AluOp.SGE: lambda: int(a >= b),
        }
        if alu_op is AluOp.DIV:
            return intmath.sdiv32(a, b) if b != 0 else None
        if alu_op is AluOp.MOD:
            return intmath.smod32(a, b) if b != 0 else None
        fold = table.get(alu_op)
        return fold() if fold else None

    def _combine(self, alu_op: AluOp, left: Value, right: Value) -> Value:
        """Emit ``alu_op(left, right)`` with immediate folding and reuse."""
        if left.is_imm and right.is_imm:
            folded = self._fold_binary(alu_op, left.imm, right.imm)
            if folded is not None:
                return Value(imm=folded)
        if left.is_imm:
            swapped = alu_op if alu_op in _COMMUTATIVE else _SWAPPED_CMP.get(alu_op)
            if swapped is not None:
                right_m = self._materialize(right)
                dest = self._result_reg(right_m)
                self._emit(nd.alu(swapped, dest, Reg(right_m.reg), Imm(left.imm)))
                return Value(reg=dest, is_scratch=True)
            left = self._materialize(left)
        if right.is_imm:
            left_m = self._materialize(left)
            dest = self._result_reg(left_m)
            self._emit(nd.alu(alu_op, dest, Reg(left_m.reg), Imm(right.imm)))
            return Value(reg=dest, is_scratch=True)
        dest = self._result_reg(left, right)
        self._emit(nd.alu(alu_op, dest, Reg(left.reg), Reg(right.reg)))
        for value in (left, right):
            if value.is_scratch and value.reg != dest:
                self._release(value)
        return Value(reg=dest, is_scratch=True)

    def _gen_pointer_add(self, expr: ast.Binary, subtract: bool) -> Value:
        left_type = expr.left.ctype.decay()
        if left_type.is_pointer:
            pointee = left_type.pointee
            pointer = self._gen_expr(expr.left)
            index = self._gen_expr(expr.right)
        else:
            pointee = expr.right.ctype.decay().pointee
            index = self._gen_expr(expr.left)
            pointer = self._gen_expr(expr.right)
        esize = pointee.size()
        if esize != 1:
            if index.is_imm:
                index = Value(imm=wrap32(index.imm * esize))
            else:
                index = self._scale_index(index, esize)
        alu_op = AluOp.SUB if subtract else AluOp.ADD
        return self._combine(alu_op, pointer, index)

    def _gen_pointer_diff(self, expr: ast.Binary) -> Value:
        esize = expr.left.ctype.decay().pointee.size()
        left = self._gen_expr(expr.left)
        right = self._gen_expr(expr.right)
        diff = self._combine(AluOp.SUB, left, right)
        if esize == 1:
            return diff
        diff_m = self._materialize(diff)
        dest = self._result_reg(diff_m)
        shift = _POW2_SHIFT.get(esize)
        if shift is not None:
            self._emit(nd.alu(AluOp.SHR, dest, Reg(diff_m.reg), Imm(shift)))
        else:
            self._emit(nd.alu(AluOp.DIV, dest, Reg(diff_m.reg), Imm(esize)))
        return Value(reg=dest, is_scratch=True)

    def _gen_logical_value(self, expr: ast.Binary) -> Value:
        """Materialise ``a && b`` / ``a || b`` as a 0/1 value."""
        result = self._alloc_scratch()
        true_label = self._new_label("ltrue")
        false_label = self._new_label("lfalse")
        join_label = self._new_label("ljoin")
        self._gen_cond(expr, true_label, false_label)
        self._start(true_label)
        self._emit(nd.movi(result, 1))
        self._goto(join_label)
        self._start(false_label)
        self._emit(nd.movi(result, 0))
        self._goto(join_label)
        self._start(join_label)
        return Value(reg=result, is_scratch=True)

    def _gen_conditional(self, expr: ast.Conditional) -> Value:
        """Lower ``cond ? a : b`` with branches into a result register."""
        result = self._alloc_scratch()
        then_label = self._new_label("cthen")
        else_label = self._new_label("celse")
        join_label = self._new_label("cjoin")
        self._gen_cond(expr.cond, then_label, else_label)
        self._start(then_label)
        value = self._gen_expr(expr.then_value)
        self._emit(nd.alu(AluOp.MOV, result, value.operand()))
        self._release(value)
        self._goto(join_label)
        self._start(else_label)
        value = self._gen_expr(expr.else_value)
        self._emit(nd.alu(AluOp.MOV, result, value.operand()))
        self._release(value)
        self._goto(join_label)
        self._start(join_label)
        return Value(reg=result, is_scratch=True)

    # -- assignment and inc/dec ------------------------------------------
    def _gen_assign(self, expr: ast.Assign, need_value: bool) -> Optional[Value]:
        if expr.op == "=":
            value = self._gen_expr(expr.value)
            lvalue = self._gen_lvalue(expr.target)
            self._store_lvalue(lvalue, value)
            self._release(lvalue)
            if need_value:
                return value
            self._release(value)
            return None
        # Compound assignment: evaluate the target address once.
        base_op = expr.op[:-1]
        lvalue = self._gen_lvalue(expr.target)
        value = self._gen_expr(expr.value)
        if expr.target.ctype.is_pointer and base_op in ("+", "-"):
            esize = expr.target.ctype.pointee.size()
            if esize != 1:
                if value.is_imm:
                    value = Value(imm=wrap32(value.imm * esize))
                else:
                    value = self._scale_index(value, esize)
        current = self._load_lvalue_keep(lvalue)
        result = self._combine(_BIN_ALU[base_op], current, value)
        result_m = self._materialize(result)
        self._store_lvalue(lvalue, result_m)
        self._release(lvalue)
        if need_value:
            return result_m
        self._release(result_m)
        return None

    def _load_lvalue_keep(self, lvalue: LValue) -> Value:
        """Load an lvalue without consuming its address scratch register."""
        if lvalue.kind == "reg":
            return Value(reg=lvalue.reg, is_scratch=False)
        reg = self._alloc_scratch()
        self._emit(nd.load(reg, lvalue.base, lvalue.offset, lvalue.width))
        return Value(reg=reg, is_scratch=True)

    def _gen_incdec(self, expr: ast.IncDec, need_value: bool) -> Optional[Value]:
        target_type = expr.target.ctype
        step = target_type.pointee.size() if target_type.is_pointer else 1
        alu_op = AluOp.ADD if expr.op == "++" else AluOp.SUB

        lvalue = self._gen_lvalue(expr.target)
        if lvalue.kind == "reg":
            old: Optional[Value] = None
            if need_value and not expr.is_prefix:
                reg = self._alloc_scratch()
                self._emit(nd.mov(reg, lvalue.reg))
                old = Value(reg=reg, is_scratch=True)
            self._emit(nd.alu(alu_op, lvalue.reg, Reg(lvalue.reg), Imm(step)))
            if lvalue.ctype.is_char:
                self._emit(nd.alu(AluOp.AND, lvalue.reg, Reg(lvalue.reg),
                                  Imm(255)))
            if not need_value:
                return None
            if expr.is_prefix:
                return Value(reg=lvalue.reg, is_scratch=False)
            return old

        current = self._load_lvalue_keep(lvalue)
        new_reg = self._alloc_scratch()
        self._emit(nd.alu(alu_op, new_reg, Reg(current.reg), Imm(step)))
        self._store_lvalue(lvalue, Value(reg=new_reg))
        self._release(lvalue)
        if not need_value:
            self._release_reg(new_reg)
            self._release(current)
            return None
        if expr.is_prefix:
            self._release(current)
            return Value(reg=new_reg, is_scratch=True)
        self._release_reg(new_reg)
        return current

    # -- calls ------------------------------------------------------------
    def _gen_call(self, expr: ast.Call, need_value: bool) -> Optional[Value]:
        if expr.callee is not None:
            return self._gen_indirect_call(expr, need_value)
        info = expr.func
        if info.is_builtin:
            return self._gen_builtin_call(expr, need_value)

        arg_values = [self._gen_expr(arg) for arg in expr.args]
        for index, value in enumerate(arg_values):
            self._emit(nd.alu(AluOp.MOV, ARG_REGS[index], value.operand()))
        for value in arg_values:
            self._release(value)
        # Spill every remaining live scratch register around the call.
        spilled = sorted(self._live_scratch)
        for reg in spilled:
            self._emit(nd.store(Reg(reg), SP, _SPILL_AREA + 4 * (reg - SCRATCH_FIRST)))

        link = self._new_label("ret")
        self._close(nd.call(f"f_{expr.name}", link))
        self._start(link)

        for reg in spilled:
            self._emit(nd.load(reg, SP, _SPILL_AREA + 4 * (reg - SCRATCH_FIRST)))
        if need_value and not info.return_type.is_void:
            reg = self._alloc_scratch()
            self._emit(nd.mov(reg, RV))
            return Value(reg=reg, is_scratch=True)
        return None

    def _gen_indirect_call(self, expr: ast.Call, need_value: bool) -> Optional[Value]:
        """Lower a call through a function-pointer value.

        The ISA's CALL terminator only takes a static label, so the
        callee's function id is dispatched through a compare-and-branch
        chain over the signature-compatible address-taken functions
        (mirroring how ``switch`` is lowered).  An id matching no
        candidate exits with code 127.
        """
        callee_type = expr.callee.ctype
        fn = callee_type.pointee if callee_type.is_function_pointer else callee_type
        candidates = []
        for name in self.sema.fp_targets:
            info = self.sema.functions[name]
            if info.return_type == fn.ret and tuple(info.param_types) == fn.params:
                candidates.append(name)

        callee = self._materialize(self._gen_expr(expr.callee))
        arg_values = [self._gen_expr(arg) for arg in expr.args]
        for index, value in enumerate(arg_values):
            self._emit(nd.alu(AluOp.MOV, ARG_REGS[index], value.operand()))
        for value in arg_values:
            self._release(value)
        # Spill live scratch around the dispatch; the callee id itself is
        # dead once dispatch picks an arm, so it stays unspilled.
        spilled = sorted(
            reg for reg in self._live_scratch
            if not (callee.is_scratch and reg == callee.reg)
        )
        for reg in spilled:
            self._emit(nd.store(Reg(reg), SP, _SPILL_AREA + 4 * (reg - SCRATCH_FIRST)))

        join = self._new_label("ijoin")
        test = self._alloc_scratch()
        for name in candidates:
            fid = self.sema.fp_targets[name]
            self._emit(nd.alu(AluOp.SEQ, test, Reg(callee.reg), Imm(fid)))
            hit = self._new_label("icall")
            miss = self._new_label("inext")
            self._close(nd.branch(test, hit, miss))
            self._start(hit)
            link = self._new_label("ret")
            self._close(nd.call(f"f_{name}", link))
            self._start(link)
            self._goto(join)
            self._start(miss)
        # No candidate matched: a corrupt or foreign function id.
        self._emit(nd.movi(test, 127))
        self._close(nd.syscall(SyscallOp.EXIT, None, (test,)))
        self._release_reg(test)
        self._release(callee)

        self._start(join)
        for reg in spilled:
            self._emit(nd.load(reg, SP, _SPILL_AREA + 4 * (reg - SCRATCH_FIRST)))
        if need_value and not fn.ret.is_void:
            reg = self._alloc_scratch()
            self._emit(nd.mov(reg, RV))
            return Value(reg=reg, is_scratch=True)
        return None

    def _gen_builtin_call(self, expr: ast.Call, need_value: bool) -> Optional[Value]:
        name = expr.name
        arg_values = [self._materialize(self._gen_expr(arg)) for arg in expr.args]
        arg_regs = [value.reg for value in arg_values]
        for value in arg_values:
            self._release(value)
        if name == "exit":
            self._close(nd.syscall(SyscallOp.EXIT, None, arg_regs))
            return None
        op = {"getc": SyscallOp.GETC, "putc": SyscallOp.PUTC,
              "sbrk": SyscallOp.SBRK, "read": SyscallOp.READ,
              "write": SyscallOp.WRITE}[name]
        dest: Optional[int] = None
        if op is not SyscallOp.PUTC:
            dest = self._alloc_scratch()
        link = self._new_label("sys")
        self._close(nd.syscall(op, link, arg_regs, dest))
        self._start(link)
        if dest is None:
            return None
        if need_value:
            return Value(reg=dest, is_scratch=True)
        self._release_reg(dest)
        return None


def generate(unit: ast.TranslationUnit, sema: SemaResult) -> Program:
    """Generate a complete program from an analysed translation unit."""
    layout = GlobalLayout(sema)
    blocks: List[BasicBlock] = []

    # Startup: establish gp/sp, call main, exit with its return value.
    start_body = [
        nd.movi(GP, GLOBAL_BASE),
        nd.movi(SP, STACK_TOP),
    ]
    blocks.append(BasicBlock("_start", start_body, nd.call("f_main", "_exit")))
    blocks.append(BasicBlock("_exit", [], nd.syscall(SyscallOp.EXIT, None, (RV,))))

    for func in unit.functions:
        if func.body is None:
            continue
        blocks.extend(FunctionCodegen(func, sema, layout).run())

    symbols = {
        name: GLOBAL_BASE + offset for name, offset in layout.offsets.items()
    }
    return Program(
        blocks,
        entry="_start",
        data=layout.data,
        data_size=max(layout.size, len(layout.data)),
        symbols=symbols,
    )
