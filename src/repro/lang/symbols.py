"""Symbols and scopes for Mini-C semantic analysis."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ctypes import CType
from .errors import SemanticError


class Symbol:
    """A declared variable (global, local or parameter)."""

    __slots__ = ("name", "ctype", "kind", "addr_taken", "unique_name")

    def __init__(self, name: str, ctype: CType, kind: str):
        if kind not in ("global", "local", "param"):
            raise ValueError(f"bad symbol kind {kind!r}")
        self.name = name
        self.ctype = ctype
        self.kind = kind
        # arrays and structs always live in memory
        self.addr_taken = ctype.is_array or ctype.is_struct
        #: Disambiguated name used by codegen (globals keep their own name).
        self.unique_name = name

    def __repr__(self) -> str:
        return f"<Symbol {self.kind} {self.name}: {self.ctype!r}>"


class FunctionInfo:
    """Signature and definition status of a function."""

    __slots__ = ("name", "return_type", "param_types", "defined", "is_builtin")

    def __init__(
        self,
        name: str,
        return_type: CType,
        param_types: Tuple[CType, ...],
        defined: bool = False,
        is_builtin: bool = False,
    ):
        self.name = name
        self.return_type = return_type
        self.param_types = param_types
        self.defined = defined
        self.is_builtin = is_builtin

    def __repr__(self) -> str:
        return f"<FunctionInfo {self.name}/{len(self.param_types)}>"


#: Built-in functions lowered directly to syscall nodes by codegen.
BUILTINS: Dict[str, FunctionInfo] = {
    "getc": FunctionInfo("getc", CType.int_(), (CType.int_(),), True, True),
    "putc": FunctionInfo(
        "putc", CType.void(), (CType.int_(), CType.int_()), True, True
    ),
    "exit": FunctionInfo("exit", CType.void(), (CType.int_(),), True, True),
    "sbrk": FunctionInfo(
        "sbrk", CType.pointer(CType.char()), (CType.int_(),), True, True
    ),
    "read": FunctionInfo(
        "read",
        CType.int_(),
        (CType.int_(), CType.pointer(CType.char()), CType.int_()),
        True,
        True,
    ),
    "write": FunctionInfo(
        "write",
        CType.int_(),
        (CType.int_(), CType.pointer(CType.char()), CType.int_()),
        True,
        True,
    ),
}


class Scope:
    """A lexical scope mapping names to symbols."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol, line: int = 0, column: int = 0) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(f"redefinition of {symbol.name!r}", line, column)
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class ScopeStack:
    """Function-body scope management with unique local naming."""

    def __init__(self, global_scope: Scope):
        self.global_scope = global_scope
        self.scopes: List[Scope] = [global_scope]
        self._counter = 0
        self.all_locals: List[Symbol] = []

    def push(self) -> None:
        self.scopes.append(Scope(self.scopes[-1]))

    def pop(self) -> None:
        if len(self.scopes) == 1:
            raise RuntimeError("cannot pop the global scope")
        self.scopes.pop()

    def declare_local(self, name: str, ctype: CType, kind: str,
                      line: int = 0, column: int = 0) -> Symbol:
        symbol = Symbol(name, ctype, kind)
        self._counter += 1
        symbol.unique_name = f"{name}.{self._counter}"
        self.scopes[-1].declare(symbol, line, column)
        self.all_locals.append(symbol)
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.scopes[-1].lookup(name)
