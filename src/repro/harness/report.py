"""EXPERIMENTS.md assembly: paper expectation vs measured, per figure."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from .figures import (
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    static_ratio_data,
    value_speculation_data,
)
from .plot import ascii_chart
from .runner import SweepRunner


def _md_table(columns: Sequence[str], rows: Dict[str, List[float]],
              fmt: str = "{:.3f}") -> str:
    header = "| line | " + " | ".join(str(c) for c in columns) + " |"
    rule = "|---" * (len(columns) + 1) + "|"
    lines = [header, rule]
    for label, values in rows.items():
        if label.startswith("_"):
            continue
        cells = " | ".join(fmt.format(v) for v in values)
        lines.append(f"| {label} | {cells} |")
    return "\n".join(lines)


def generate_report(runner: Optional[SweepRunner] = None,
                    issue_models: Sequence[int] = tuple(range(1, 9)),
                    ) -> str:
    """Build the full EXPERIMENTS.md body (runs any missing simulations)."""
    runner = runner or SweepRunner()
    sections: List[str] = []
    sections.append(
        "# EXPERIMENTS — paper vs. measured\n\n"
        "Reproduction of the evaluation of Melvin & Patt (ISCA 1991).\n"
        f"Benchmarks: {', '.join(runner.benchmarks)} (scale {runner.scale}).\n"
        "Absolute numbers are not expected to match the paper's VAX-derived\n"
        "traces; the claims below are about the *shape* of each result.\n"
    )

    ratios = static_ratio_data(runner)
    mean_ratio = sum(ratios.values()) / len(ratios)
    sections.append(
        "## §3.1 Static ALU:memory node ratio\n\n"
        "Paper: \"the static ratio of ALU to memory nodes was about 2.5 to "
        "one\".\n\n"
        + "\n".join(f"- {name}: {value:.2f}" for name, value in ratios.items())
        + f"\n- **mean: {mean_ratio:.2f}**\n"
    )

    fig2 = figure2_data(runner)
    rows2 = {"single": fig2["single"], "enlarged": fig2["enlarged"]}
    sections.append(
        "## Figure 2 — dynamic basic block size histograms\n\n"
        "Paper: original blocks are small and highly skewed (over half of\n"
        "executed blocks are 0-4 nodes); enlargement makes the curve much\n"
        "flatter.  Fractions of executed blocks per size bucket:\n\n"
        + _md_table(fig2["buckets"], rows2)
        + f"\n\nMeasured: {fig2['single'][0] * 100:.0f}% of single-mode blocks"
        f" are 0-4 nodes vs {fig2['enlarged'][0] * 100:.0f}% after"
        " enlargement.\n"
    )

    fig3 = figure3_data(runner, issue_models)
    sections.append(
        "## Figure 3 — retired nodes/cycle vs issue model (memory A)\n\n"
        "Paper: variation among schemes grows with word width; enlargement\n"
        "helps every discipline; dyn window 1 is close to static; window 4\n"
        "comes close to window 256; combining both mechanisms beats either\n"
        "alone; realistic wide machines reach speedups of three to six.\n\n"
        + _md_table([str(m) for m in fig3["_issue_models"]], fig3)
        + "\n\n```\n"
        + ascii_chart(fig3, [str(m) for m in fig3["_issue_models"]],
                      title="retired nodes/cycle vs issue model")
        + "\n```\n"
    )

    fig4 = figure4_data(runner)
    sections.append(
        "## Figure 4 — retired nodes/cycle vs memory config (issue model 8)\n\n"
        "Paper: line slopes are similar, so higher-performing machines lose\n"
        "a smaller *fraction* going to slower memory (latency tolerance\n"
        "correlates with performance); the fully pipelined memory keeps\n"
        "even 3-cycle memory from being catastrophic.\n\n"
        + _md_table(fig4["_memories"], fig4)
        + "\n"
    )

    fig5 = figure5_data(runner)
    sections.append(
        "## Figure 5 — per-benchmark variation (dyn window 4, enlarged)\n\n"
        "Paper: percentage variation among benchmarks is higher for wide\n"
        "multinodewords; several benchmarks dip from config 5B to 5D (1K\n"
        "cache with low locality is worse than constant 2-cycle memory).\n\n"
        + _md_table(fig5["_composites"], fig5)
        + "\n"
    )

    fig6 = figure6_data(runner, issue_models)
    sections.append(
        "## Figure 6 — operation redundancy vs issue model (memory A)\n\n"
        "Paper: ordering is the inverse of Figure 3 (higher-performing\n"
        "machines throw away more operations); dyn-256/enlarged discards\n"
        "nearly one of four executed nodes, while window 4 discards far\n"
        "fewer at nearly the same performance.\n\n"
        + _md_table([str(m) for m in fig6["_issue_models"]], fig6)
        + "\n"
    )

    sections.append(value_speculation_section(runner))
    sections.append(schedule_gap_section(runner))
    sections.append(_verdicts(fig2, fig3, fig6))
    ablations = _ablation_section()
    if ablations:
        sections.append(ablations)
    partial = partial_grid_note(getattr(runner, "failures", []))
    if partial:
        sections.append(partial)
    return "\n".join(sections)


def _speculation_accuracy_line(runner: SweepRunner) -> str:
    """Aggregate branch/value accuracy at the widest spec-grid point."""
    from ..machine.config import BranchMode, Discipline, MachineConfig

    branch = {"lookups": 0, "mispredicts": 0}
    value: Dict[str, List[int]] = {}
    for kind in ("last", "stride", "context"):
        totals = [0, 0]  # delivered, confirmed
        for name in runner.benchmarks:
            result = runner.run_point(name, MachineConfig(
                discipline=Discipline.DYNAMIC, issue_model=8, memory="C",
                branch_mode=BranchMode.ENLARGED, window_blocks=256,
                value_predictor=kind,
            ))
            totals[0] += result.value_predictions
            totals[1] += result.value_confirmed
            if kind == "last":
                branch["lookups"] += result.branch_lookups
                branch["mispredicts"] += result.mispredicts
        value[kind] = totals
    branch_acc = (1.0 - branch["mispredicts"] / branch["lookups"]
                  if branch["lookups"] else 1.0)
    value_accs = ", ".join(
        f"{kind} {confirmed / delivered:.3f}" if delivered else f"{kind} n/a"
        for kind, (delivered, confirmed) in value.items()
    )
    return (
        f"Aggregate prediction accuracy at issue model 8 (memory C):"
        f" branch {branch_acc:.3f}; value — {value_accs}"
        " (confirmed / delivered; the confidence gate holds delivery"
        " back until a site has proven itself)."
    )


def value_speculation_section(runner: SweepRunner) -> str:
    """The beyond-the-paper value-speculation table and speedup note."""
    data = value_speculation_data(runner)
    models = [str(m) for m in data["_issue_models"]]
    branch_only = data["none"][-1]
    best_real = max(data["last"][-1], data["stride"][-1],
                    data["context"][-1])
    oracle = data["perfect"][-1]
    return (
        "## Value speculation (beyond the paper)\n\n"
        "Speculative operand delivery on the dyn-256/enlarged machine\n"
        "with 3-cycle loads (memory C): a confident load-value\n"
        "prediction lets dependents issue one cycle after the load, and\n"
        "verification squashes and replays the dependent subtree when\n"
        "the prediction was wrong.  Geometric-mean IPC per predictor\n"
        "kind over the issue models:\n\n"
        + _md_table(models, {k: v for k, v in data.items()
                             if not k.startswith("_")})
        + f"\n\nAt issue model {models[-1]}, the best realistic value"
        f" predictor reaches {best_real / branch_only:.2f}x the"
        f" branch-only machine ({best_real:.3f} vs {branch_only:.3f}"
        f" IPC); the perfect-value oracle shows"
        f" {oracle / branch_only:.2f}x headroom.  Branch speculation"
        " alone leaves this latency on the table: the two mechanisms"
        " compose.\n\n"
        + _speculation_accuracy_line(runner) + "\n"
    )


def schedule_gap_section(runner: SweepRunner) -> str:
    """The beyond-the-paper list-vs-optimal static scheduling study.

    Per benchmark: the exact solver's certified gap over the enlarged
    program's blocks (static words the greedy list scheduler leaves on
    the table), the measured machine-level IPC effect at a sched-grid
    point, and per innermost loop the modulo-scheduling II against its
    MII lower bound.
    """
    from ..machine.config import (
        BranchMode,
        Discipline,
        ISSUE_MODELS,
        MEMORY_CONFIGS,
        MachineConfig,
    )
    from ..optsched import analyze_program

    issue = ISSUE_MODELS[5]
    memory = MEMORY_CONFIGS["A"]
    rows = [
        "| benchmark | blocks | closed | list words | optimal | lower"
        " bound | gap | IPC (list) | IPC (optimal) |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    loop_rows = [
        "| benchmark | loop block | nodes | ResMII | RecMII | MII | II"
        " | serial | status |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for name in runner.benchmarks:
        workload = runner.workload(name)
        analysis = analyze_program(workload.enlarged, issue, memory)
        base = MachineConfig(
            discipline=Discipline.STATIC, issue_model=5, memory="A",
            branch_mode=BranchMode.ENLARGED,
        )
        listed = runner.run_point(name, base)
        optimal = runner.run_point(
            name, dataclasses.replace(base, optimal_schedule=True)
        )
        rows.append(
            f"| {name} | {len(analysis.blocks)}"
            f" | {analysis.closed_blocks} | {analysis.list_words}"
            f" | {analysis.optimal_words} | {analysis.lower_bound_words}"
            f" | {analysis.gap_percent:.1f}%"
            f" | {listed.retired_per_cycle:.3f}"
            f" | {optimal.retired_per_cycle:.3f} |"
        )
        for loop in analysis.loops:
            status = ("II = MII (optimal)" if loop.closed
                      else "pipelined" if loop.pipelined else "fallback")
            loop_rows.append(
                f"| {name} | `{loop.label}` | {loop.node_count}"
                f" | {loop.res_mii} | {loop.rec_mii} | {loop.mii}"
                f" | {loop.ii} | {loop.list_makespan} | {status} |"
            )
    body = (
        "## Optimal static scheduling (beyond the paper)\n\n"
        "The exact solver (repro.optsched) re-packs every static block\n"
        "with a certificate `makespan == lower bound`, quantifying what\n"
        "the greedy critical-path list scheduler leaves on the table at\n"
        "issue model 5 / memory A.  Word gaps are static (per block\n"
        "visit weights differ), so the machine-level IPC columns use\n"
        "the measured sched-grid points:\n\n"
        + "\n".join(rows)
    )
    if len(loop_rows) > 2:
        body += (
            "\n\nInnermost single-block loops, modulo-scheduled: II is\n"
            "the smallest initiation interval a kernel was found for,\n"
            "MII = max(ResMII, RecMII) its certified lower bound, and\n"
            "`serial` the list schedule's makespan (the no-overlap II).\n"
            "The engine replays one block at a time, so these kernels\n"
            "are reported as analysis rather than wired into timing:\n\n"
            + "\n".join(loop_rows)
        )
    return body + "\n"


def partial_grid_note(failures) -> str:
    """A warning section for grids with failed (degraded) points.

    Fault-tolerant execution records failed points instead of aborting
    (see ``repro.harness.executor``); any figure built over a partial
    grid must say so, or a missing point silently skews every mean.
    """
    failures = list(failures)
    if not failures:
        return ""
    lines = [
        "## ⚠ Partial grid\n",
        f"{len(failures)} point(s) failed and are missing from the data"
        " above; means and verdicts over the affected series are"
        " degraded.\n",
        "| benchmark | configuration | kind | attempts | error |",
        "|---|---|---|---|---|",
    ]
    for failure in failures:
        message = failure.message.replace("|", "\\|")
        if len(message) > 100:
            message = message[:97] + "..."
        lines.append(
            f"| {failure.benchmark} | {failure.config} | {failure.kind} "
            f"| {failure.attempts} | {message} |"
        )
    return "\n".join(lines) + "\n"


def _ablation_section() -> str:
    """Fold in any ablation tables the benchmark suite has produced."""
    import glob
    import os

    pattern = os.path.join("benchmarks", "results", "ablation_*.txt")
    tables = []
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path, encoding="utf-8") as handle:
                tables.append(handle.read().rstrip())
        except OSError:
            continue
    if not tables:
        return ""
    body = "\n\n".join(tables)
    return (
        "## Ablations (beyond the paper)\n\n"
        "Produced by `pytest benchmarks/test_ablations.py`;"
        " see DESIGN.md for what each studies.\n\n"
        "```\n" + body + "\n```\n"
    )


def _verdicts(fig2, fig3, fig6) -> str:
    """Computed paper-claim verdicts and known deviations."""
    wide = {k: v[-1] for k, v in fig3.items() if not k.startswith("_")}
    narrow = {k: v[1] for k, v in fig3.items() if not k.startswith("_")}
    redundancy = {k: v[-1] for k, v in fig6.items() if not k.startswith("_")}
    sequential = fig3["static/single"][0]
    speedup = wide["dyn256/enlarged"] / sequential

    def check(ok: bool) -> str:
        return "yes" if ok else "**NO**"

    lines = [
        "## Verdicts\n",
        "| Paper claim | Measured | Holds |",
        "|---|---|---|",
        f"| speedups of three to six on realistic processors | "
        f"{speedup:.2f}x (dyn256/enlarged vs sequential) | "
        f"{check(3.0 <= speedup <= 6.5)} |",
        f"| low variation among schemes at narrow words | "
        f"{max(narrow.values()) / min(narrow.values()):.2f}x spread at "
        f"model 2 vs {max(wide.values()) / min(wide.values()):.2f}x at "
        f"model 8 | {check(max(narrow.values()) / min(narrow.values()) < max(wide.values()) / min(wide.values()))} |",
        f"| enlargement benefits all disciplines (wide issue) | "
        f"static {wide['static/enlarged'] / wide['static/single']:.2f}x, "
        f"dyn4 {wide['dyn4/enlarged'] / wide['dyn4/single']:.2f}x, "
        f"dyn256 {wide['dyn256/enlarged'] / wide['dyn256/single']:.2f}x | "
        f"{check(wide['static/enlarged'] > wide['static/single'] and wide['dyn256/enlarged'] > wide['dyn256/single'])} |",
        f"| window 4 comes close to window 256 | "
        f"{wide['dyn4/enlarged'] / wide['dyn256/enlarged']:.0%} of the "
        f"window-256 performance | "
        f"{check(wide['dyn4/enlarged'] > 0.7 * wide['dyn256/enlarged'])} |",
        f"| enlarged/window-1 below single/window-4, but close | "
        f"{wide['dyn1/enlarged']:.2f} vs {wide['dyn4/single']:.2f} | "
        f"{check(wide['dyn1/enlarged'] < wide['dyn4/single'])} |",
        f"| window 256 + enlarged discards ~1 of 4 executed nodes | "
        f"{redundancy['dyn256/enlarged']:.1%} | "
        f"{check(0.15 <= redundancy['dyn256/enlarged'] <= 0.35)} |",
        f"| >half of executed blocks are 0-4 nodes; enlargement flattens | "
        f"{fig2['single'][0]:.0%} -> {fig2['enlarged'][0]:.0%} | "
        f"{check(fig2['single'][0] > 0.5 > fig2['enlarged'][0])} |",
        f"| headroom remains above window 256 (perfect prediction) | "
        f"perfect is {wide['dyn256/perfect'] / wide['dyn256/enlarged']:.2f}x "
        f"the realistic line | "
        f"{check(wide['dyn256/perfect'] >= wide['dyn256/enlarged'])} |",
        "",
        "### Known deviations\n",
        "* The paper places dynamic window 1 *slightly above* static "
        "scheduling; here it lands slightly below "
        f"({wide['dyn1/single']:.2f} vs {wide['static/single']:.2f}). Our "
        "static engine overlaps in-order issue across block boundaries "
        "(outstanding loads keep flowing), which a window of one "
        "structurally cannot; the paper's static model appears weaker.",
        "* Enlarged-block redundancy at narrow issue is higher than the "
        "paper's Figure 6 suggests, because fault recovery re-executes "
        "the original path and repeated faults chain (the paper's "
        "'predict on faults' improvement is unimplemented there too).",
        "* Absolute retired-nodes/cycle values differ from the paper's "
        "(different ISA, compiler and inputs); all claims above are "
        "shape-level, as planned in DESIGN.md.",
    ]
    return "\n".join(lines)
