"""Sweep runner: simulate many (benchmark, configuration) points.

Prepared workloads (compile + profile + enlarge + functional traces) are
cached in-process; timing results are cached on disk so interrupted or
repeated sweeps resume where they left off.
"""

from __future__ import annotations

import math
import os
import time
from typing import Iterable, List, Optional, Sequence

from ..chaos.inject import current as chaos_current
from ..machine.config import MachineConfig
from ..machine.simulator import PreparedWorkload, simulate
from ..stats.results import SimResult
from ..telemetry.collector import Collector, NULL_COLLECTOR
from ..telemetry.logging import get_logger
from ..validate.findings import ValidationFinding
from ..validate.invariants import check_result
from ..workloads import PAPER_WORKLOAD_NAMES, WORKLOADS, prepared
from ..workloads.base import ensure_artifacts
from .cache import ResultCache, result_key
from .errors import PointFailure, WorkloadPrepareError

_LOG = get_logger("sweep")


def default_benchmarks() -> List[str]:
    """Benchmarks used when the caller does not choose.

    The paper's five, so figure pipelines and recorded baselines keep
    their composition; the widening benchmarks (hashjoin, jsontok,
    crc32) are opted into explicitly.  Overridable via the
    ``REPRO_BENCH_WORKLOADS`` environment variable (comma-separated
    names).
    """
    raw = os.environ.get("REPRO_BENCH_WORKLOADS")
    if raw:
        names = [name.strip() for name in raw.split(",") if name.strip()]
        unknown = [name for name in names if name not in WORKLOADS]
        if unknown:
            raise ValueError(f"unknown benchmarks: {unknown}")
        return names
    return list(PAPER_WORKLOAD_NAMES)


def default_scale() -> int:
    """Input scale for harness runs (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_SCALE", "1"))


class SweepRunner:
    """Runs timing simulations over a set of benchmarks, with caching."""

    def __init__(self, benchmarks: Optional[Sequence[str]] = None,
                 scale: Optional[int] = None, use_cache: bool = True,
                 verbose: bool = False,
                 collector: Optional[Collector] = None,
                 max_cycles: Optional[int] = None,
                 validate: bool = False):
        self.benchmarks = list(benchmarks) if benchmarks else default_benchmarks()
        unknown = [name for name in self.benchmarks if name not in WORKLOADS]
        if unknown:
            raise ValueError(f"unknown benchmarks: {unknown}")
        self.scale = default_scale() if scale is None else scale
        self.collector = NULL_COLLECTOR if collector is None else collector
        self.cache = (
            ResultCache(collector=self.collector) if use_cache else None
        )
        self.verbose = verbose
        #: engine watchdog limit (None: REPRO_MAX_CYCLES or the default).
        self.max_cycles = max_cycles
        #: PointFailure records accumulated by fault-tolerant execution
        #: (see repro.harness.executor); report generation annotates
        #: partial grids from this list.
        self.failures: List[PointFailure] = []
        #: validation oracle hook (see repro.validate): when enabled the
        #: runner keeps every result it serves and checks per-result
        #: invariants eagerly.  Only the sweep's parent process enables
        #: this -- pool workers mail results back and the parent observes
        #: them under the single-writer merge, so serial and parallel
        #: sweeps of one grid collect identical findings.
        self.validate = validate
        self.results: List[SimResult] = []
        self.findings: List[ValidationFinding] = []
        self._observed_keys: set = set()

    # ------------------------------------------------------------------
    def workload(self, name: str) -> PreparedWorkload:
        """The prepared (traced) workload for one benchmark.

        Raises:
            WorkloadPrepareError: wrapping whatever preparation raised
                (``WorkloadMismatch``, compiler errors, corrupted
                artefacts), so prepare-stage failures are typed and
                never mistaken for simulation failures.
        """
        try:
            return prepared(WORKLOADS[name], scale=self.scale)
        except Exception as exc:
            raise WorkloadPrepareError(name, exc) from exc

    def prepare_artifacts(self, name: str) -> None:
        """Materialize one benchmark's on-disk artifacts without loading.

        The parent side of a parallel sweep calls this once per
        benchmark before dispatching its points, so pool workers load
        artifacts instead of re-compiling and re-tracing.

        Raises:
            WorkloadPrepareError: wrapping whatever preparation raised.
        """
        try:
            ensure_artifacts(WORKLOADS[name], scale=self.scale)
        except Exception as exc:
            raise WorkloadPrepareError(name, exc) from exc

    def observe_result(self, result: SimResult) -> None:
        """Feed one served result to the validation oracle (if enabled).

        Called exactly once per point by every path that delivers a
        result to the sweep's parent process: cache hits here in
        :meth:`cache_lookup`, fresh serial results by the execution
        backends, and parallel results by the pool harvest.  Invariant
        findings are collected eagerly; dominance and baseline layers
        run over :attr:`results` once the grid is complete.
        """
        if not self.validate:
            return
        key = result_key(result.benchmark, result.config, self.scale)
        if key in self._observed_keys:
            # A point can reach the parent twice (e.g. a cache probe in
            # both the sweep loop and the executor); one grid point
            # contributes one result to the oracle.
            return
        self._observed_keys.add(key)
        self.results.append(result)
        collector = self.collector
        if collector.enabled:
            check_start = time.perf_counter()
            found = check_result(result)
            collector.add_span(
                "phase.validate", time.perf_counter() - check_start,
                benchmark=result.benchmark, config=str(result.config),
            )
        else:
            found = check_result(result)
        if found:
            self.findings.extend(found)
            self.collector.count("validate.invariant.violations", len(found))

    def cache_lookup(self, benchmark: str,
                     config: MachineConfig) -> Optional[SimResult]:
        """Probe the result cache, recording hit telemetry."""
        if self.cache is None:
            return None
        hit = self.cache.get(benchmark, config, self.scale)
        if hit is None:
            return None
        if self.collector.enabled:
            self.collector.count("sweep.cache.hit")
            self.collector.record_point(
                benchmark=benchmark, config=str(config),
                cached=True, wall_s=0.0,
                ipc=hit.retired_per_cycle,
            )
        self.observe_result(hit)
        return hit

    def simulate_point(self, benchmark: str,
                       config: MachineConfig) -> SimResult:
        """Prepare and simulate one point, bypassing the result cache."""
        eng = chaos_current()
        if eng is not None:
            eng.act("point.simulate", ("crash", "hang", "delay"))
        collector = self.collector
        if collector.enabled:
            point = str(config)
            start = time.perf_counter()
            workload = self.workload(benchmark)
            prepared_at = time.perf_counter()
            result = simulate(workload, config, collector=collector,
                              max_cycles=self.max_cycles)
            end = time.perf_counter()
            collector.count("sweep.cache.miss")
            collector.observe("sweep.point.prepare_s", prepared_at - start)
            collector.observe("sweep.point.simulate_s", end - prepared_at)
            collector.observe("sweep.point.wall_s", end - start)
            collector.add_span("phase.prepare", prepared_at - start,
                               benchmark=benchmark, config=point)
            collector.add_span("phase.simulate", end - prepared_at,
                               benchmark=benchmark, config=point)
            collector.record_point(
                benchmark=benchmark, config=point, cached=False,
                wall_s=end - start, prepare_s=prepared_at - start,
                simulate_s=end - prepared_at,
                ipc=result.retired_per_cycle,
            )
        else:
            result = simulate(self.workload(benchmark), config,
                              max_cycles=self.max_cycles)
        if self.verbose:
            _LOG.info("point", benchmark=benchmark, config=str(config),
                      ipc=round(result.retired_per_cycle, 4),
                      cycles=result.cycles)
        return result

    def cache_store(self, result: SimResult) -> None:
        """Persist one freshly simulated result."""
        if self.cache is not None:
            self.cache.put(result, self.scale)

    def run_point(self, benchmark: str, config: MachineConfig) -> SimResult:
        """One simulation, served from cache when available.

        When the runner's collector is enabled, each point records its
        wall time split into workload preparation and simulation, the
        result-cache hit/miss counters, and a per-point summary record
        (the ``points`` list of ``telemetry.json``).

        This is the fail-fast path: errors propagate.  For graceful
        degradation (timeouts, retries, structured ``PointFailure``
        records) wrap the runner in a
        :class:`repro.harness.executor.PointExecutor`.
        """
        hit = self.cache_lookup(benchmark, config)
        if hit is not None:
            return hit
        result = self.simulate_point(benchmark, config)
        self.cache_store(result)
        self.observe_result(result)
        return result

    def run_configs(self, configs: Iterable[MachineConfig],
                    benchmarks: Optional[Sequence[str]] = None,
                    ) -> List[SimResult]:
        """Cartesian sweep of configs x benchmarks."""
        names = list(benchmarks) if benchmarks else self.benchmarks
        results = []
        for config in configs:
            for name in names:
                results.append(self.run_point(name, config))
        return results

    # ------------------------------------------------------------------
    def mean_ipc(self, config: MachineConfig,
                 benchmarks: Optional[Sequence[str]] = None) -> float:
        """Geometric-mean retired-nodes-per-cycle across benchmarks."""
        names = list(benchmarks) if benchmarks else self.benchmarks
        values = [self.run_point(name, config).retired_per_cycle for name in names]
        return geometric_mean(values, collector=self.collector,
                              label=f"IPC at {config}")

    def mean_redundancy(self, config: MachineConfig,
                        benchmarks: Optional[Sequence[str]] = None) -> float:
        """Arithmetic-mean redundancy across benchmarks."""
        names = list(benchmarks) if benchmarks else self.benchmarks
        values = [self.run_point(name, config).redundancy for name in names]
        return sum(values) / len(values)


#: Whether the zero-IPC stderr warning has fired since the last
#: :func:`reset_zero_ipc_warning`.  Dedup is deliberate: a 2800-point
#: grid with a few degraded points calls :func:`geometric_mean` per
#: figure cell, and one warning per call would bury stderr.  The
#: ``sweep.zero_ipc`` counter still counts every floored value.
_ZERO_IPC_WARNED = False


def reset_zero_ipc_warning() -> None:
    """Re-arm the once-per-sweep zero-IPC stderr warning.

    The sweep/report entry points call this so each run warns exactly
    once however many means it computes.
    """
    global _ZERO_IPC_WARNED
    _ZERO_IPC_WARNED = False


def geometric_mean(values: Sequence[float],
                   collector: Collector = NULL_COLLECTOR,
                   label: str = "value") -> float:
    """Geometric mean, tolerating zeros by flooring at a tiny epsilon.

    A zero IPC means a degraded or failed point, and silently flooring
    it would bury that in the mean -- so every floored value is counted
    under the ``sweep.zero_ipc`` telemetry counter, and the first
    occurrence per sweep is warned about on stderr (see
    :func:`reset_zero_ipc_warning`).
    """
    if not values:
        return 0.0
    floored = sum(1 for value in values if value <= 0.0)
    if floored:
        collector.count("sweep.zero_ipc", floored)
        global _ZERO_IPC_WARNED
        if not _ZERO_IPC_WARNED:
            _ZERO_IPC_WARNED = True
            _LOG.warning(
                "zero_ipc_floored", label=label, count=floored,
                of=len(values),
                note=(
                    "zero/negative values clamped to 1e-12 in a geometric"
                    " mean; the mean hides degraded points (further"
                    " warnings suppressed for this sweep; see the"
                    " sweep.zero_ipc counter)"
                ),
            )
    total = 0.0
    for value in values:
        total += math.log(max(value, 1e-12))
    return math.exp(total / len(values))
