"""On-disk cache of simulation results.

A full reproduction is 2800 timing runs (560 configurations x 5
benchmarks); caching lets the figure harnesses accumulate results across
invocations and lets a re-run of a bench skip everything it has already
measured.  Results are stored as one JSON object per (benchmark, config,
scale) key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from ..chaos.inject import current as chaos_current
from ..machine.config import MachineConfig
from ..stats.results import SimResult
from ..telemetry.collector import Collector, NULL_COLLECTOR
from ..telemetry.logging import get_logger

#: Bump when simulator behaviour changes enough to invalidate old results.
CACHE_VERSION = 7

_LOG = get_logger("cache")


def atomic_write_json(path: str, payload: Any,
                      indent: Optional[int] = None,
                      sort_keys: bool = False) -> None:
    """Crash-safe JSON write: unique temp file, fsync, ``os.replace``.

    A killed writer can never leave a truncated file at ``path`` -- the
    old contents stay until the fully flushed replacement is renamed
    into place -- and the unique temp name keeps concurrent writers
    (e.g. two sweeps sharing a cache directory) from trampling each
    other's in-flight data.  ``indent`` is forwarded to ``json.dump``
    for documents meant to be committed and diffed (golden baselines);
    ``sort_keys`` pins byte layout independent of insertion order.

    After the replace the containing directory is fsynced (best effort:
    not every filesystem allows opening a directory) so the rename itself
    survives a power cut, not just the file contents.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
            if indent is not None:
                handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)

_RESULT_FIELDS = (
    "cycles",
    "retired_nodes",
    "discarded_nodes",
    "dynamic_blocks",
    "mispredicts",
    "branch_lookups",
    "faults",
    "loads",
    "stores",
    "cache_accesses",
    "cache_misses",
    "write_buffer_hits",
    "issue_words",
    "issued_slots",
    "window_block_cycles",
    "window_samples",
    "work_nodes",
)

#: Value-speculation counters: written only for points simulated with a
#: value predictor and decoded with a zero default, so paper-grid
#: entries (``value_predictor="none"``) keep their pre-speculation byte
#: layout and pre-existing caches stay valid verbatim.
_VALUE_FIELDS = (
    "value_predictions",
    "value_confirmed",
    "value_squashed",
    "value_replays",
)


def result_key(benchmark: str, config: MachineConfig, scale: int) -> str:
    """Stable cache key for one simulation point.

    The ``|v...`` value-predictor and ``|opt`` optimal-schedule suffixes
    appear only when those axes are active: every pre-existing key (and
    committed baseline) for default-axis points stays byte-identical.
    """
    key = (
        f"v{CACHE_VERSION}|{benchmark}|{scale}|{config.discipline.value}"
        f"|w{config.window_blocks}|i{config.issue_model}|m{config.memory}"
        f"|{config.branch_mode.value}|h{int(config.static_hints)}"
        f"|p{config.predictor}"
    )
    if config.value_predictor != "none":
        key += f"|v{config.value_predictor}"
    if config.optimal_schedule:
        key += "|opt"
    return key


class ResultCache:
    """JSON-file-backed result store."""

    def __init__(self, path: Optional[str] = None,
                 collector: Collector = NULL_COLLECTOR):
        if path is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
            path = os.path.join(root, "results.json")
        self.path = path
        self.collector = collector
        self._data: Dict[str, dict] = {}
        self._loaded = False
        self._dirty = 0
        self._write_failed = False

    # ------------------------------------------------------------------
    def _quarantine_file(self) -> None:
        """Move a corrupt cache file aside for post-mortem, don't delete."""
        directory = os.path.dirname(self.path) or "."
        pen = os.path.join(directory, ".quarantine")
        base = os.path.basename(self.path)
        try:
            os.makedirs(pen, exist_ok=True)
            target = os.path.join(pen, base)
            suffix = 0
            while os.path.exists(target):
                suffix += 1
                target = os.path.join(pen, f"{base}.{suffix}")
            os.replace(self.path, target)
        except OSError:
            return
        self.collector.count("cache.quarantined")
        _LOG.warning("cache_file_quarantined", path=self.path, moved_to=target)
        eng = chaos_current()
        if eng is not None:
            eng.mark_recovered("cache.read")

    def _quarantine_entry(self, key: str, raw: Any) -> None:
        """Preserve a corrupt cache entry in a sidecar before dropping it."""
        directory = os.path.dirname(self.path) or "."
        pen = os.path.join(directory, ".quarantine")
        digest = hashlib.sha1(key.encode("utf-8")).hexdigest()[:12]
        try:
            os.makedirs(pen, exist_ok=True)
            target = os.path.join(pen, f"entry-{digest}.json")
            suffix = 0
            while os.path.exists(target):
                suffix += 1
                target = os.path.join(pen, f"entry-{digest}.{suffix}.json")
            atomic_write_json(target, {"key": key, "raw": raw}, indent=2)
        except OSError:
            return
        self.collector.count("cache.quarantined")
        _LOG.warning("cache_entry_quarantined", key=key, moved_to=target)
        eng = chaos_current()
        if eng is not None:
            eng.mark_recovered("cache.read")

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError:
            self._data = {}
            return
        except ValueError:
            # A truncated or garbled cache file: quarantine it for
            # post-mortem and start fresh rather than failing the sweep.
            self.collector.count("cache.corrupt")
            self._quarantine_file()
            self._data = {}
            return
        if isinstance(data, dict):
            self._data = data
        else:
            self.collector.count("cache.corrupt")
            self._quarantine_file()
            self._data = {}

    def get(self, benchmark: str, config: MachineConfig,
            scale: int) -> Optional[SimResult]:
        """Fetch a cached result, rebuilding the SimResult object.

        A corrupted entry (wrong shape, missing fields -- e.g. written by
        an older code version or truncated on disk) is quarantined into a
        ``.quarantine/`` sidecar, dropped from the live cache, and counted
        under ``cache.corrupt``, so the caller transparently recomputes
        instead of crashing.
        """
        self._load()
        key = result_key(benchmark, config, scale)
        raw = self._data.get(key)
        if raw is None:
            return None
        eng = chaos_current()
        if eng is not None:
            rule = eng.act("cache.read", ("corrupt", "delay"))
            if rule is not None and rule.kind == "corrupt":
                raw = {"_chaos": "corrupted entry"}
        try:
            return SimResult(
                benchmark=benchmark,
                config=config,
                **{field: raw[field] for field in _RESULT_FIELDS},
                **{field: raw.get(field, 0) for field in _VALUE_FIELDS},
            )
        except (KeyError, TypeError):
            self.collector.count("cache.corrupt")
            self._quarantine_entry(key, raw)
            del self._data[key]
            self._dirty += 1
            return None

    def put(self, result: SimResult, scale: int) -> None:
        """Store a result and flush to disk."""
        self._load()
        key = result_key(result.benchmark, result.config, scale)
        entry = {field: getattr(result, field) for field in _RESULT_FIELDS}
        if result.config.value_predictor != "none":
            for field in _VALUE_FIELDS:
                entry[field] = getattr(result, field)
        self._data[key] = entry
        self._dirty += 1
        self.flush()

    def flush(self) -> None:
        """Persist dirty entries via a crash-safe atomic replace.

        On a write failure the dirty count is retained so the next put or
        terminal flush retries; keys are sorted so the byte layout is
        independent of insertion order (quarantined-then-recomputed
        entries land at the same offsets as never-corrupted ones).
        """
        if not self._dirty:
            return
        eng = chaos_current()
        try:
            if eng is not None:
                eng.act("cache.write", ("io-error", "delay"))
            atomic_write_json(self.path, self._data, sort_keys=True)
        except OSError as exc:
            self._write_failed = True
            _LOG.warning("cache_flush_failed", path=self.path,
                         error=f"{type(exc).__name__}: {exc}")
            raise
        if self._write_failed:
            self._write_failed = False
            _LOG.info("cache_flush_recovered", path=self.path)
            if eng is not None:
                eng.mark_recovered("cache.write")
        self._dirty = 0

    def __len__(self) -> int:
        self._load()
        return len(self._data)
