"""Sweep checkpoint manifest: ``sweep.state.json``.

A long sweep killed midway leaves its good points in the result cache,
but nothing that records *which* points were attempted, which failed and
why.  The checkpoint manifest fills that gap: the sweep command writes
it atomically as points complete, and ``--resume`` reads it back to

* skip re-attempting points recorded as permanently failed (their
  :class:`PointFailure` records are carried forward into the new run's
  report), and
* restore progress accounting, while the result cache supplies the
  completed points themselves.

The manifest is keyed by the same ``result_key`` strings as the result
cache (which embed ``CACHE_VERSION``), so a simulator-behaviour bump
invalidates checkpoints and cached results together.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from ..chaos.inject import current as chaos_current
from ..telemetry.logging import get_logger
from .cache import atomic_write_json
from .errors import PointFailure

_LOG = get_logger("checkpoint")

#: Manifest layout version.
CHECKPOINT_VERSION = 1

#: Default manifest filename, placed next to the result cache.
CHECKPOINT_BASENAME = "sweep.state.json"


def default_checkpoint_path() -> str:
    root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return os.path.join(root, CHECKPOINT_BASENAME)


class SweepCheckpoint:
    """Atomic, resumable record of one sweep's progress.

    Single-writer: only the sweep's parent process writes the manifest.
    Parallel backends (``--jobs N``) mail point outcomes back to the
    parent, which folds them in here -- workers never open this file.
    """

    def __init__(self, path: str, benchmarks: Sequence[str], scale: int,
                 total: int, save_interval: int = 25,
                 backend: str = "serial"):
        self.path = path
        self.benchmarks = list(benchmarks)
        self.scale = scale
        self.total = total
        #: Informational: which execution backend last wrote this
        #: manifest.  Never part of compatibility -- keys are identical
        #: across backends, so a serial sweep resumes under ``--jobs N``
        #: and vice versa.
        self.backend = backend
        self.done: set = set()
        self.failures: Dict[str, PointFailure] = {}
        self._save_interval = max(1, save_interval)
        self._since_save = 0
        self._write_failed = False

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> Optional["SweepCheckpoint"]:
        """Read a manifest; None when missing, corrupt or wrong version."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or raw.get("version") != CHECKPOINT_VERSION:
            return None
        try:
            checkpoint = cls(
                path=path,
                benchmarks=list(raw["benchmarks"]),
                scale=int(raw["scale"]),
                total=int(raw["total"]),
                backend=str(raw.get("backend", "serial")),
            )
            checkpoint.done = set(raw.get("done", []))
            checkpoint.failures = {
                str(entry["key"]): PointFailure.from_dict(entry["failure"])
                for entry in raw.get("failures", [])
            }
        except (KeyError, TypeError, ValueError):
            return None
        return checkpoint

    def compatible_with(self, benchmarks: Sequence[str], scale: int) -> bool:
        """Whether a resume attempt matches the sweep this recorded."""
        return self.benchmarks == list(benchmarks) and self.scale == scale

    # ------------------------------------------------------------------
    def mark_done(self, key: str) -> None:
        """Record one completed point (by its result-cache key)."""
        self.done.add(key)
        self.failures.pop(key, None)
        self._since_save += 1
        if self._since_save >= self._save_interval:
            self.save()

    def mark_failed(self, key: str, failure: PointFailure) -> None:
        """Record one failed point; failures always flush immediately."""
        self.failures[key] = failure
        self.done.discard(key)
        self.save()

    def failed_point(self, key: str) -> Optional[PointFailure]:
        """The recorded failure for a point, if any."""
        return self.failures.get(key)

    def known_failures(self) -> List[PointFailure]:
        return list(self.failures.values())

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Write the manifest atomically (temp file + ``os.replace``).

        A failed write is tolerated: the manifest is an accelerator, not
        the source of truth (the result cache is), so the sweep keeps
        going and the retained ``_since_save`` count retries the write at
        the next completed point.
        """
        document = {
            "version": CHECKPOINT_VERSION,
            "benchmarks": self.benchmarks,
            "scale": self.scale,
            "total": self.total,
            "backend": self.backend,
            "done": sorted(self.done),
            "failures": [
                {"key": key, "failure": failure.to_dict()}
                for key, failure in sorted(self.failures.items())
            ],
        }
        eng = chaos_current()
        try:
            if eng is not None:
                eng.act("checkpoint.write", ("io-error", "delay"))
            atomic_write_json(self.path, document)
        except OSError as exc:
            self._write_failed = True
            _LOG.warning("checkpoint_save_failed", path=self.path,
                         error=f"{type(exc).__name__}: {exc}")
            return
        if self._write_failed:
            self._write_failed = False
            _LOG.info("checkpoint_save_recovered", path=self.path)
            if eng is not None:
                eng.mark_recovered("checkpoint.write")
        self._since_save = 0

    def remove(self) -> None:
        """Delete the manifest (a fully clean sweep needs no resume)."""
        try:
            os.remove(self.path)
        except OSError:
            pass
