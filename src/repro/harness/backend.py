"""Pluggable sweep execution backends: serial, or a process pool.

The sweep loop (``repro-sim sweep``, the bench harness) is written
against one small surface, :class:`ExecutionBackend`:

* :meth:`~ExecutionBackend.submit` hands the backend one uncached
  :class:`PointTask` and yields any :class:`PointOutcome` objects that
  are ready (the serial backend's own task immediately; whatever the
  pool has finished so far otherwise);
* :meth:`~ExecutionBackend.finish` blocks until every outstanding task
  has produced an outcome;
* :meth:`~ExecutionBackend.close` releases workers.

:class:`SerialBackend` is today's fail-safe path verbatim: each task
runs through the same :class:`PointExecutor` the serial sweep always
used, in submission order, in this process -- so serial results,
cache keys and telemetry are bit-identical whether or not the backend
layer is in the middle.

:class:`ProcessPoolBackend` (``--jobs N``) fans tasks out across a
``concurrent.futures.ProcessPoolExecutor``.  The merge discipline is
strict single-writer: workers never touch the result cache, the
checkpoint manifest or ``telemetry.json`` -- each worker runs its point
through its own :class:`PointExecutor` (same timeout/retry machinery as
serial) and mails back one picklable message ``(result-or-failure,
telemetry snapshot)``; the parent merges snapshots into its collector,
performs the cache write, and the sweep loop updates the checkpoint.
Prepare is hoisted: before a benchmark's first point dispatches, the
parent materializes its artifacts (:meth:`SweepRunner.prepare_artifacts`)
so workers load them from the artifact store instead of re-compiling
and re-tracing per point.

Degradation mirrors the serial executor: a crashed worker becomes
``worker-crash`` :class:`PointFailure` records for the tasks that were
in flight (the pool is rebuilt and undispatched tasks resubmitted, with
a strike limit so a poison point cannot crash-loop the sweep), and a
worker wedged past the wall-clock budget is bounded first by the
worker-side timeout thread and ultimately by a parent-side backstop
that fails the remaining in-flight tasks and terminates the pool.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..chaos.inject import current as chaos_current
from ..machine.config import MachineConfig
from ..stats.results import SimResult
from .errors import PointFailure, WorkloadPrepareError
from .executor import ExecutionPolicy, PointExecutor
from .runner import SweepRunner

#: Extra attempts a task gets after its worker pool broke underneath it.
#: Strike one may be an innocent neighbour of the crashing point; strike
#: two in a row almost certainly is the crashing point.
MAX_CRASH_STRIKES = 2

#: Outstanding futures per worker; bounds how many tasks a pool
#: breakage can strand and how much completed work can queue unmerged.
_WINDOW_PER_WORKER = 2


@dataclass(frozen=True)
class PointTask:
    """One uncached (benchmark, configuration) point to execute."""

    benchmark: str
    config: MachineConfig
    #: result-cache key (parent-computed; also the checkpoint key).
    key: str


@dataclass
class PointOutcome:
    """What one task produced: a result or a structured failure."""

    task: PointTask
    result: Optional[SimResult] = None
    failure: Optional[PointFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


class ExecutionBackend:
    """Protocol: where sweep points run (see module docstring)."""

    #: short name for telemetry.json context and progress messages.
    name = "abstract"

    def submit(self, task: PointTask) -> Iterator[PointOutcome]:
        raise NotImplementedError

    def finish(self) -> Iterator[PointOutcome]:
        raise NotImplementedError

    def close(self) -> None:
        """Release workers; safe to call more than once."""


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution through one :class:`PointExecutor`."""

    name = "serial"

    def __init__(self, runner: SweepRunner,
                 policy: Optional[ExecutionPolicy] = None):
        self.runner = runner
        self.executor = PointExecutor(runner, policy)

    def submit(self, task: PointTask) -> Iterator[PointOutcome]:
        eng = chaos_current()
        if eng is not None:
            # Dispatch only tolerates latency: a raised fault here would
            # abort the whole sweep, not one point.
            eng.act("backend.dispatch", ("delay",))
        outcome = self.executor.execute(task.benchmark, task.config)
        if isinstance(outcome, PointFailure):
            yield PointOutcome(task, failure=outcome)
        else:
            self.runner.observe_result(outcome)
            yield PointOutcome(task, result=outcome)

    def finish(self) -> Iterator[PointOutcome]:
        return iter(())


@dataclass(frozen=True)
class _WorkerJob:
    """The picklable work order one pool worker receives."""

    benchmark: str
    config: MachineConfig
    scale: int
    telemetry: bool
    timeout_s: Optional[float]
    retries: int
    backoff_s: float
    max_cycles: Optional[int]
    retry_kinds: Tuple[str, ...] = ()


def _pool_point(job: _WorkerJob) -> Tuple[object, Optional[dict]]:
    """Pool-worker entry: run one point, mail back (outcome, snapshot).

    The worker-local runner has no result cache (the parent owns every
    cache write) and its own collector; the returned telemetry snapshot
    is merged by the parent so counters and per-point records match a
    serial run of the same grid.
    """
    from ..telemetry.collector import MetricsCollector

    collector = MetricsCollector() if job.telemetry else None
    runner = SweepRunner(
        benchmarks=[job.benchmark], scale=job.scale, use_cache=False,
        collector=collector, max_cycles=job.max_cycles,
    )
    executor = PointExecutor(runner, ExecutionPolicy(
        timeout_s=job.timeout_s, retries=job.retries,
        backoff_s=job.backoff_s, isolate=False, max_cycles=job.max_cycles,
        retry_kinds=job.retry_kinds,
    ))
    outcome = executor.execute(job.benchmark, job.config)
    snapshot = collector.snapshot() if collector is not None else None
    return outcome, snapshot


@dataclass
class _Pending:
    task: PointTask
    strikes: int = 0
    submitted_at: float = field(default_factory=time.perf_counter)


class ProcessPoolBackend(ExecutionBackend):
    """Fan sweep points out across a pool of worker processes."""

    name = "process"

    def __init__(self, runner: SweepRunner,
                 policy: Optional[ExecutionPolicy] = None,
                 jobs: Optional[int] = None):
        self.runner = runner
        self.policy = policy or ExecutionPolicy()
        self.jobs = max(2, jobs if jobs is not None else (os.cpu_count() or 2))
        self._pool: Optional[ProcessPoolExecutor] = None
        self._queue: Deque[_Pending] = deque()
        self._inflight: Dict[Future, _Pending] = {}
        #: benchmark -> the prepare failure to stamp on its points, or
        #: None once its artifacts are known to be on disk.
        self._prepared: Dict[str, Optional[WorkloadPrepareError]] = {}
        self._window = self.jobs * _WINDOW_PER_WORKER

    # ------------------------------------------------------------------
    def submit(self, task: PointTask) -> Iterator[PointOutcome]:
        eng = chaos_current()
        if eng is not None:
            eng.act("backend.dispatch", ("delay",))
        self._queue.append(_Pending(task))
        yield from self._pump(block=False)

    def finish(self) -> Iterator[PointOutcome]:
        yield from self._pump(block=True)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _ensure_prepared(self, benchmark: str) -> Optional[WorkloadPrepareError]:
        """Prepare-once-per-benchmark, before any of its points dispatch."""
        if benchmark not in self._prepared:
            try:
                self.runner.prepare_artifacts(benchmark)
                self._prepared[benchmark] = None
            except WorkloadPrepareError as exc:
                self._prepared[benchmark] = exc
        return self._prepared[benchmark]

    def _pump(self, block: bool) -> Iterator[PointOutcome]:
        """Dispatch queued tasks and harvest completions.

        Non-blocking pumps (one per ``submit``) keep the window full and
        drain whatever is already done; a blocking pump runs until both
        the queue and the in-flight window are empty.
        """
        while True:
            # Fill the dispatch window from the queue.
            while self._queue and len(self._inflight) < self._window:
                pending = self._queue.popleft()
                prepare_error = self._ensure_prepared(pending.task.benchmark)
                if prepare_error is not None:
                    yield self._degrade(
                        pending.task, "prepare", str(prepare_error)
                    )
                    continue
                try:
                    future = self._ensure_pool().submit(
                        _pool_point, self._job_for(pending.task)
                    )
                except BrokenProcessPool:
                    # The pool died between harvests; this task never
                    # dispatched (no strike).  Settle the doomed
                    # in-flight futures -- which also rebuilds the pool
                    # -- and retry the fill.
                    self._queue.appendleft(pending)
                    if self._inflight:
                        yield from self._harvest(list(self._inflight))
                    else:
                        self._rebuild_pool()
                    continue
                self._inflight[future] = pending

            if not self._inflight:
                if not self._queue:
                    return
                continue  # everything queued degraded at prepare; refill

            done, _ = wait(
                set(self._inflight),
                timeout=(self._backstop_s() if block else 0),
                return_when=FIRST_COMPLETED,
            )
            if not done:
                if not block:
                    return
                yield from self._backstop_expired()
                continue
            yield from self._harvest(done)
            if not block and not self._queue:
                return

    def _job_for(self, task: PointTask) -> _WorkerJob:
        policy = self.policy
        return _WorkerJob(
            benchmark=task.benchmark,
            config=task.config,
            scale=self.runner.scale,
            telemetry=self.runner.collector.enabled,
            timeout_s=policy.timeout_s,
            retries=policy.retries,
            backoff_s=policy.backoff_s,
            max_cycles=self.runner.max_cycles,
            retry_kinds=policy.retry_kinds,
        )

    # ------------------------------------------------------------------
    def _harvest(self, done: Iterable[Future]) -> Iterator[PointOutcome]:
        broken = False
        for future in done:
            pending = self._inflight.pop(future)
            try:
                outcome, snapshot = future.result()
            except BrokenProcessPool:
                broken = True
                pending.strikes += 1
                if pending.strikes >= MAX_CRASH_STRIKES:
                    yield self._degrade(
                        pending.task, "worker-crash",
                        f"worker process died {pending.strikes} times"
                        " running this point",
                        attempts=pending.strikes,
                        elapsed=time.perf_counter() - pending.submitted_at,
                    )
                else:
                    self._queue.appendleft(pending)
                continue
            except Exception as exc:  # noqa: BLE001 - degrade, don't abort
                yield self._degrade(
                    pending.task, "worker-crash",
                    f"{type(exc).__name__}: {exc}",
                    elapsed=time.perf_counter() - pending.submitted_at,
                )
                continue
            if snapshot is not None:
                merge_start = time.perf_counter()
                self.runner.collector.merge(snapshot)
                self.runner.collector.add_span(
                    "phase.merge", time.perf_counter() - merge_start,
                    benchmark=pending.task.benchmark,
                )
            if isinstance(outcome, PointFailure):
                # Worker-side telemetry already counted this failure;
                # the parent only records it for reporting/exit codes.
                self.runner.failures.append(outcome)
                yield PointOutcome(pending.task, failure=outcome)
                continue
            try:
                self.runner.cache_store(outcome)
            except Exception:  # noqa: BLE001 - a cache write must not
                self.runner.collector.count(  # lose the result
                    "sweep.cache.store_error"
                )
            # Validation happens on the parent side of the merge (the
            # worker's runner never has the oracle enabled), so the
            # finding set is identical to a serial run of this grid.
            self.runner.observe_result(outcome)
            yield PointOutcome(pending.task, result=outcome)
        if broken:
            self._rebuild_pool()

    def _rebuild_pool(self) -> None:
        """Replace a broken pool; in-flight futures were already settled."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        # Anything still tracked in-flight raced the breakage: requeue it
        # with a strike so it either reruns or degrades at its limit.
        for future in list(self._inflight):
            pending = self._inflight.pop(future)
            pending.strikes += 1
            self._queue.appendleft(pending)

    # ------------------------------------------------------------------
    def _backstop_s(self) -> Optional[float]:
        """How long a blocking wait tolerates zero completions.

        Worker-side timeouts are the primary hang defence; this bound
        only fires when a worker is wedged below Python (so its timeout
        thread cannot report).  With ``jobs`` workers making progress,
        *some* future must complete within one task's full retry budget.
        """
        if self.policy.timeout_s is None:
            return None
        per_task = self.policy.timeout_s * (self.policy.retries + 1)
        return per_task + 30.0

    def _backstop_expired(self) -> Iterator[PointOutcome]:
        budget = self._backstop_s()
        for future, pending in list(self._inflight.items()):
            future.cancel()
            del self._inflight[future]
            yield self._degrade(
                pending.task, "timeout",
                f"no completion within the parent backstop ({budget:g}s);"
                " worker presumed wedged",
                elapsed=time.perf_counter() - pending.submitted_at,
            )
        self._terminate_workers()

    def _terminate_workers(self) -> None:
        """Hard-stop a wedged pool so a blocking drain can't hang forever."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        try:
            processes = list((pool._processes or {}).values())
        except Exception:  # noqa: BLE001 - private attr; best effort only
            processes = []
        for process in processes:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _degrade(self, task: PointTask, kind: str, message: str,
                 attempts: int = 1, elapsed: float = 0.0) -> PointOutcome:
        """Record a parent-detected failure exactly like the executor does."""
        collector = self.runner.collector
        if kind == "timeout":
            collector.count("sweep.point.timeout")
        collector.count("sweep.point.failed")
        failure = PointFailure(
            benchmark=task.benchmark, config=str(task.config), kind=kind,
            message=message, attempts=attempts, elapsed_s=round(elapsed, 6),
        )
        if collector.enabled:
            collector.record_point(
                benchmark=task.benchmark, config=str(task.config),
                cached=False, failed=True, error=kind, attempts=attempts,
                wall_s=elapsed,
            )
        self.runner.failures.append(failure)
        return PointOutcome(task, failure=failure)


def make_backend(runner: SweepRunner,
                 policy: Optional[ExecutionPolicy] = None,
                 jobs: int = 1) -> ExecutionBackend:
    """The backend for ``--jobs N``: serial at 1, a process pool above."""
    if jobs <= 1:
        return SerialBackend(runner, policy)
    return ProcessPoolBackend(runner, policy, jobs=jobs)


def plan_tasks(configs: List[MachineConfig], benchmarks: List[str],
               key_fn, benchmark_major: bool = False,
               ) -> Iterator[Tuple[str, MachineConfig, str]]:
    """The sweep's task order: ``(benchmark, config, cache key)`` triples.

    Serial sweeps keep the historical config-major order (bit-identical
    progress output); parallel sweeps go benchmark-major so each
    benchmark's prepare happens once, right before its points dispatch,
    and workers churn one benchmark's artifacts at a time.
    """
    if benchmark_major:
        for name in benchmarks:
            for config in configs:
                yield name, config, key_fn(name, config)
    else:
        for config in configs:
            for name in benchmarks:
                yield name, config, key_fn(name, config)
