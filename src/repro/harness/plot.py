"""ASCII line charts for figure data.

The paper presents Figures 3-6 as line graphs; these renderers produce a
terminal-friendly equivalent so EXPERIMENTS.md can show shape at a
glance, not just tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Characters used to mark each series, in legend order.
_MARKS = "ox*+#%@&$~"


def ascii_chart(series: Dict[str, List[float]], columns: Sequence[str],
                height: int = 16, title: str = "") -> str:
    """Render series as a scatter/line chart in plain text.

    Args:
        series: label -> y values (one per column); labels starting with
            ``_`` are skipped.
        columns: x-axis labels.
        height: chart height in rows.
        title: optional heading line.
    """
    visible = {k: v for k, v in series.items() if not k.startswith("_")}
    if not visible:
        return title
    all_values = [v for values in visible.values() for v in values]
    top = max(all_values)
    bottom = min(0.0, min(all_values))
    span = (top - bottom) or 1.0

    width = len(columns)
    col_width = max(max(len(str(c)) for c in columns) + 1, 6)
    grid = [[" "] * (width * col_width) for _ in range(height)]

    marks = {}
    for index, (label, values) in enumerate(visible.items()):
        mark = _MARKS[index % len(_MARKS)]
        marks[label] = mark
        for x, value in enumerate(values):
            row = height - 1 - int((value - bottom) / span * (height - 1))
            col = x * col_width + col_width // 2
            if grid[row][col] == " ":
                grid[row][col] = mark
            else:
                grid[row][col] = "+"  # overlapping series

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        value = top - (top - bottom) * row_index / (height - 1)
        lines.append(f"{value:7.2f} |" + "".join(row))
    axis = " " * 8 + "+" + "-" * (width * col_width)
    lines.append(axis)
    labels_row = " " * 9
    for column in columns:
        labels_row += str(column).center(col_width)
    lines.append(labels_row)
    legend = "  ".join(f"{marks[label]}={label}" for label in visible)
    lines.append(" " * 9 + legend)
    return "\n".join(lines)
