"""Structured error taxonomy for fault-tolerant sweep execution.

Every way a sweep point can fail maps to one typed error with a stable
``kind`` string, so failures can be recorded, counted, serialised into
``telemetry.json`` / ``sweep.state.json``, and reasoned about on resume:

========================  =====================================================
kind                      raised when
========================  =====================================================
``hang``                  an engine's ``max_cycles`` watchdog fired
``divergence``            engine accounting diverged from the functional trace
``timeout``               the executor's wall-clock limit expired
``prepare``               workload preparation (compile/profile/enlarge/trace)
                          failed, including ``WorkloadMismatch``
``cache``                 the result cache raised while reading or writing
``transient``             an explicitly retryable failure (I/O glitches, the
                          test suite's injected flakes)
``worker-crash``          an isolated subprocess died without reporting
``unexpected``            anything else -- degraded, recorded, not fatal
========================  =====================================================

The engine-level types (:class:`SimulationHang`,
:class:`EngineDivergence`) live in :mod:`repro.machine.errors` so the
machine layer never imports upward; this module re-exports them as the
canonical import point for the whole taxonomy.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from ..chaos.inject import ChaosCrash
from ..machine.errors import (  # noqa: F401  (re-exported taxonomy members)
    EngineDivergence,
    SimulationError,
    SimulationHang,
)
from ..machine.simulator import WorkloadMismatch


class HarnessError(Exception):
    """Base class for failures raised by the sweep harness itself."""


class PointTimeout(HarnessError):
    """A sweep point exceeded the executor's wall-clock budget."""

    def __init__(self, benchmark: str, config: str, timeout_s: float):
        self.benchmark = benchmark
        self.config = config
        self.timeout_s = timeout_s
        super().__init__(
            f"{benchmark} on {config}: no result within {timeout_s:g}s"
        )


class WorkloadPrepareError(HarnessError):
    """Workload preparation failed (compile, profile, enlarge or trace).

    Wraps the underlying cause (``WorkloadMismatch``, a compiler error,
    a corrupted on-disk artefact, ...) so prepare-stage failures are
    never mistaken for simulation failures.
    """

    def __init__(self, benchmark: str, cause: BaseException):
        self.benchmark = benchmark
        self.cause = cause
        super().__init__(
            f"preparing workload {benchmark!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


class CacheCorruption(HarnessError):
    """The result cache failed while reading or writing an entry."""


class TransientSimulationError(HarnessError):
    """A retryable failure: the executor backs off and tries again."""


class WorkerCrashed(HarnessError):
    """An isolated worker process exited without reporting a result."""

    def __init__(self, benchmark: str, config: str, exitcode: Any):
        self.benchmark = benchmark
        self.config = config
        self.exitcode = exitcode
        super().__init__(
            f"{benchmark} on {config}: worker process died "
            f"(exit code {exitcode})"
        )


class RemoteFailure(HarnessError):
    """A failure marshalled back from an isolated worker process.

    Carries the worker-side classification so retry and reporting treat
    it exactly like the original exception would have been treated.
    """

    def __init__(self, kind: str, transient: bool, message: str):
        self.kind = kind
        self.transient = transient
        super().__init__(message)


#: error kind -> exception classes, checked in order (first match wins).
_KIND_TABLE = (
    ("hang", (SimulationHang,)),
    ("divergence", (EngineDivergence,)),
    ("timeout", (PointTimeout,)),
    ("prepare", (WorkloadPrepareError, WorkloadMismatch)),
    ("cache", (CacheCorruption,)),
    ("transient", (TransientSimulationError,)),
    ("worker-crash", (WorkerCrashed, ChaosCrash)),
)

#: the closed vocabulary of failure kinds (plus the fallback).
FAILURE_KINDS = tuple(kind for kind, _ in _KIND_TABLE) + ("unexpected",)


def classify_error(exc: BaseException) -> str:
    """The stable ``kind`` string for one failure."""
    if isinstance(exc, RemoteFailure):
        return exc.kind
    for kind, classes in _KIND_TABLE:
        if isinstance(exc, classes):
            return kind
    return "unexpected"


def is_transient(exc: BaseException) -> bool:
    """Whether the executor should retry this failure with backoff.

    Explicitly marked transients and OS-level I/O errors are worth a
    retry; hangs, timeouts and semantic errors (divergence, prepare
    bugs) deterministically recur, so retrying them only burns time.
    """
    if isinstance(exc, RemoteFailure):
        return exc.transient
    if isinstance(exc, WorkloadPrepareError):
        # The wrapper hides the cause's class; an I/O flake during
        # preparation is just as retryable as one during simulation.
        return is_transient(exc.cause)
    return isinstance(exc, (TransientSimulationError, ChaosCrash, OSError))


@dataclass
class PointFailure:
    """One failed sweep point, recorded instead of aborting the sweep."""

    benchmark: str
    config: str
    kind: str
    message: str
    attempts: int = 1
    elapsed_s: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (telemetry.json, sweep.state.json)."""
        record = asdict(self)
        if not record["extra"]:
            del record["extra"]
        return record

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "PointFailure":
        return cls(
            benchmark=str(raw.get("benchmark", "")),
            config=str(raw.get("config", "")),
            kind=str(raw.get("kind", "unexpected")),
            message=str(raw.get("message", "")),
            attempts=int(raw.get("attempts", 1)),
            elapsed_s=float(raw.get("elapsed_s", 0.0)),
            extra=dict(raw.get("extra", {})),
        )

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.benchmark} {self.config}: {self.kind} "
            f"after {self.attempts} attempt(s) -- {self.message}"
        )
