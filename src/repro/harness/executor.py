"""Fault-tolerant execution of sweep points.

:class:`PointExecutor` runs each (benchmark, configuration) point
through an isolation boundary with a wall-clock timeout and bounded
retry, turning every failure into a structured :class:`PointFailure`
record instead of aborting the sweep:

* **In-process** (the default): the point runs on a worker thread so the
  wall-clock timeout can fire; a timed-out thread is abandoned (Python
  threads cannot be killed) and the engine-level ``max_cycles`` watchdog
  remains the backstop that actually unwinds a runaway simulation.
* **Subprocess** (``isolate=True``): the point runs in a forked worker
  that is terminated outright on timeout, so a wedged or crashing point
  cannot take the sweep down with it.  Results cross the process
  boundary by pickling; the parent performs the cache write, so worker
  crashes can never corrupt the result cache.

Transient failures (see :func:`repro.harness.errors.is_transient`) are
retried with exponential backoff up to ``retries`` times.  Telemetry:
``sweep.point.retried``, ``sweep.point.timeout``, ``sweep.point.failed``
counters, plus a per-point record flagged ``failed=True``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..chaos.inject import current as chaos_current
from ..machine.config import MachineConfig
from ..stats.results import SimResult
from .errors import (
    PointFailure,
    PointTimeout,
    RemoteFailure,
    WorkerCrashed,
    classify_error,
    is_transient,
)
from ..telemetry.logging import get_logger
from .runner import SweepRunner

_LOG = get_logger("executor")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard to try, how long to wait, and where to run each point."""

    #: wall-clock budget per attempt in seconds (None: unbounded).
    timeout_s: Optional[float] = None
    #: extra attempts granted to *transient* failures.
    retries: int = 2
    #: first backoff delay; doubles per retry.
    backoff_s: float = 0.05
    #: run each point in a terminate-on-timeout subprocess.
    isolate: bool = False
    #: engine watchdog override (None: REPRO_MAX_CYCLES or the default).
    max_cycles: Optional[int] = None
    #: failure kinds (classify_error names) granted retries on top of the
    #: transient set -- e.g. ("timeout", "hang") under the chaos harness,
    #: where those are injected and recoverable rather than systematic.
    retry_kinds: Tuple[str, ...] = ()


def _isolated_worker(conn, benchmark: str, config: MachineConfig,
                     scale: int, max_cycles: Optional[int]) -> None:
    """Subprocess entry: simulate one point, report through the pipe."""
    try:
        runner = SweepRunner(
            benchmarks=[benchmark], scale=scale, use_cache=False,
            max_cycles=max_cycles,
        )
        result = runner.simulate_point(benchmark, config)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        conn.send(("err", classify_error(exc), is_transient(exc),
                   f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _call_with_timeout(fn, timeout_s: float, benchmark: str,
                       config_str: str):
    """Run ``fn`` on a daemon thread, raising PointTimeout on expiry.

    The timed-out thread keeps running (abandoned); the engine watchdog
    bounds how long it can actually burn CPU.
    """
    box: list = []

    def target() -> None:
        try:
            box.append(("ok", fn()))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box.append(("err", exc))

    thread = threading.Thread(
        target=target, name=f"point-{benchmark}", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise PointTimeout(benchmark, config_str, timeout_s)
    status, payload = box[0]
    if status == "err":
        raise payload
    return payload


class PointExecutor:
    """Runs sweep points with isolation, timeout, retry and degradation."""

    def __init__(self, runner: SweepRunner,
                 policy: Optional[ExecutionPolicy] = None):
        self.runner = runner
        self.policy = policy or ExecutionPolicy()
        self.collector = runner.collector
        #: every failure this executor has recorded, in order.
        self.failures: List[PointFailure] = []
        if self.policy.max_cycles is not None:
            runner.max_cycles = self.policy.max_cycles

    # ------------------------------------------------------------------
    def execute(self, benchmark: str,
                config: MachineConfig) -> Union[SimResult, PointFailure]:
        """One point: cache probe, guarded simulation, structured failure."""
        runner = self.runner
        hit = runner.cache_lookup(benchmark, config)
        if hit is not None:
            return hit

        policy = self.policy
        collector = self.collector
        start = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                if policy.isolate:
                    result = self._run_isolated(benchmark, config)
                elif policy.timeout_s is not None:
                    result = _call_with_timeout(
                        lambda: runner.simulate_point(benchmark, config),
                        policy.timeout_s, benchmark, str(config),
                    )
                else:
                    result = runner.simulate_point(benchmark, config)
            except Exception as exc:  # noqa: BLE001 - degrade, don't abort
                retryable = (is_transient(exc)
                             or classify_error(exc) in policy.retry_kinds)
                if retryable and attempts <= policy.retries:
                    collector.count("sweep.point.retried")
                    _LOG.warning(
                        "point_retry", benchmark=benchmark,
                        config=str(config), attempt=attempts,
                        error=classify_error(exc),
                    )
                    time.sleep(policy.backoff_s * (2 ** (attempts - 1)))
                    continue
                return self._record_failure(
                    benchmark, config, exc, attempts,
                    time.perf_counter() - start,
                )
            if attempts > 1:
                eng = chaos_current()
                if eng is not None:
                    eng.mark_recovered("executor.retry")
            try:
                runner.cache_store(result)
            except Exception:  # noqa: BLE001 - a cache write must not
                collector.count("sweep.cache.store_error")  # lose the result
            return result

    # ------------------------------------------------------------------
    def _run_isolated(self, benchmark: str,
                      config: MachineConfig) -> SimResult:
        """One attempt in a dedicated worker process."""
        runner = self.runner
        policy = self.policy
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_isolated_worker,
            args=(child_conn, benchmark, config, runner.scale,
                  runner.max_cycles),
            daemon=True,
        )
        start = time.perf_counter()
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(policy.timeout_s):
                process.terminate()
                process.join()
                raise PointTimeout(
                    benchmark, str(config), policy.timeout_s or 0.0
                )
            try:
                payload = parent_conn.recv()
            except EOFError:
                process.join()
                raise WorkerCrashed(
                    benchmark, str(config), process.exitcode
                ) from None
        finally:
            parent_conn.close()
            if process.is_alive():
                process.join(5)
        if payload[0] == "ok":
            result: SimResult = payload[1]
            collector = self.collector
            if collector.enabled:
                wall = time.perf_counter() - start
                collector.count("sweep.cache.miss")
                collector.observe("sweep.point.wall_s", wall)
                # The child's collector is not mailed back on the
                # isolated path, so the whole attempt lands as one
                # parent-side simulate-phase span.
                collector.add_span("phase.simulate", wall,
                                   benchmark=benchmark, config=str(config),
                                   isolated=True)
                collector.record_point(
                    benchmark=benchmark, config=str(config), cached=False,
                    isolated=True, wall_s=wall,
                    ipc=result.retired_per_cycle,
                )
            return result
        _, kind, transient, message = payload
        raise RemoteFailure(kind, transient, message)

    def _record_failure(self, benchmark: str, config: MachineConfig,
                        exc: BaseException, attempts: int,
                        elapsed: float) -> PointFailure:
        collector = self.collector
        kind = classify_error(exc)
        if kind == "timeout":
            collector.count("sweep.point.timeout")
        collector.count("sweep.point.failed")
        failure = PointFailure(
            benchmark=benchmark, config=str(config), kind=kind,
            message=str(exc), attempts=attempts,
            elapsed_s=round(elapsed, 6),
        )
        _LOG.error("point_failed", benchmark=benchmark, config=str(config),
                   kind=kind, attempts=attempts,
                   elapsed_s=round(elapsed, 3))
        if collector.enabled:
            collector.record_point(
                benchmark=benchmark, config=str(config), cached=False,
                failed=True, error=kind, attempts=attempts,
                wall_s=elapsed,
            )
        self.failures.append(failure)
        self.runner.failures.append(failure)
        return failure
