"""Per-figure data generators for the paper's evaluation section.

Every figure in the paper's section 3 has a function here that produces
its data series (and an ASCII rendering); the pytest-benchmark harnesses
under ``benchmarks/`` call these, and ``repro-sim report`` assembles them
into EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ..interp.trace import Trace
from ..machine.config import (
    BranchMode,
    Discipline,
    FIGURE4_MEMORY_ORDER,
    MachineConfig,
    scheduling_disciplines,
)
from .runner import SweepRunner

#: Line labels in the order the paper's legend lists its ten schemes.
def discipline_lines() -> List[Tuple[str, Discipline, int, BranchMode]]:
    """(label, discipline, window, branch-mode) for the ten lines."""
    lines = []
    for discipline, window, mode in scheduling_disciplines():
        if discipline is Discipline.STATIC:
            label = f"static/{mode.value}"
        else:
            label = f"dyn{window}/{mode.value}"
        lines.append((label, discipline, window, mode))
    return lines


def _config(discipline: Discipline, window: int, mode: BranchMode,
            issue_model: int, memory: str) -> MachineConfig:
    return MachineConfig(
        discipline=discipline,
        issue_model=issue_model,
        memory=memory,
        branch_mode=mode,
        window_blocks=window,
    )


# ----------------------------------------------------------------------
# Figure 2: basic block size histograms (single vs enlarged)
# ----------------------------------------------------------------------
#: Histogram bucket upper bounds (inclusive); the last bucket is open.
FIGURE2_BUCKETS = (4, 9, 14, 19, 24, 29, 39, 49)


def _bucket_label(index: int) -> str:
    lower = 0 if index == 0 else FIGURE2_BUCKETS[index - 1] + 1
    if index == len(FIGURE2_BUCKETS):
        return f"{lower}+"
    return f"{lower}-{FIGURE2_BUCKETS[index]}"


def dynamic_block_histogram(trace: Trace, templates) -> Counter:
    """Execution-weighted histogram of dynamic block sizes (in nodes)."""
    sizes = [templates[label].n_datapath for label in trace.labels]
    histogram: Counter = Counter()
    for block_id in trace.block_ids:
        histogram[sizes[block_id]] += 1
    return histogram


def _bucketize(histogram: Counter) -> List[float]:
    total = sum(histogram.values())
    buckets = [0] * (len(FIGURE2_BUCKETS) + 1)
    for size, count in histogram.items():
        for index, bound in enumerate(FIGURE2_BUCKETS):
            if size <= bound:
                buckets[index] += count
                break
        else:
            buckets[-1] += count
    if total == 0:
        return [0.0] * len(buckets)
    return [count / total for count in buckets]


def figure2_data(runner: SweepRunner) -> Dict[str, List[float]]:
    """Fraction of executed blocks per size bucket, single vs enlarged.

    Averaged over all benchmarks, like the paper's Figure 2.
    """
    single: Counter = Counter()
    enlarged: Counter = Counter()
    for name in runner.benchmarks:
        workload = runner.workload(name)
        single += dynamic_block_histogram(
            workload.single_trace, workload.templates_single
        )
        enlarged += dynamic_block_histogram(
            workload.enlarged_trace, workload.templates_enlarged
        )
    return {
        "buckets": [_bucket_label(i) for i in range(len(FIGURE2_BUCKETS) + 1)],
        "single": _bucketize(single),
        "enlarged": _bucketize(enlarged),
    }


# ----------------------------------------------------------------------
# Figure 3: retired nodes/cycle vs issue model (memory A)
# ----------------------------------------------------------------------
def figure3_data(runner: SweepRunner,
                 issue_models: Sequence[int] = tuple(range(1, 9)),
                 ) -> Dict[str, List[float]]:
    """Geometric-mean IPC per discipline line over the issue models."""
    data: Dict[str, List[float]] = {}
    for label, discipline, window, mode in discipline_lines():
        data[label] = [
            runner.mean_ipc(_config(discipline, window, mode, model, "A"))
            for model in issue_models
        ]
    data["_issue_models"] = list(issue_models)
    return data


# ----------------------------------------------------------------------
# Figure 4: retired nodes/cycle vs memory configuration (issue model 8)
# ----------------------------------------------------------------------
def figure4_data(runner: SweepRunner,
                 memories: Sequence[str] = FIGURE4_MEMORY_ORDER,
                 issue_model: int = 8) -> Dict[str, List[float]]:
    """Geometric-mean IPC per discipline line over memory configs."""
    data: Dict[str, List[float]] = {}
    for label, discipline, window, mode in discipline_lines():
        data[label] = [
            runner.mean_ipc(_config(discipline, window, mode, issue_model, memory))
            for memory in memories
        ]
    data["_memories"] = list(memories)
    return data


# ----------------------------------------------------------------------
# Figure 5: per-benchmark variation over composite configurations
# ----------------------------------------------------------------------
#: Fourteen (issue model, memory) pairs slicing diagonally through the
#: 8x7 matrix, arranged so that the paper's '5B' -> '5D' locality dip is
#: visible (constant 2-cycle memory followed by a small cache).
FIGURE5_COMPOSITES: Tuple[Tuple[int, str], ...] = (
    (1, "A"), (2, "A"), (3, "A"), (3, "E"), (4, "E"), (4, "B"), (5, "B"),
    (5, "D"), (6, "D"), (6, "G"), (7, "G"), (7, "F"), (8, "F"), (8, "C"),
)


def figure5_data(runner: SweepRunner,
                 composites: Sequence[Tuple[int, str]] = FIGURE5_COMPOSITES,
                 ) -> Dict[str, List[float]]:
    """Per-benchmark IPC on dyn-window-4/enlarged over composite configs."""
    data: Dict[str, List[float]] = {}
    for name in runner.benchmarks:
        series = []
        for issue_model, memory in composites:
            config = _config(
                Discipline.DYNAMIC, 4, BranchMode.ENLARGED, issue_model, memory
            )
            series.append(runner.run_point(name, config).retired_per_cycle)
        data[name] = series
    data["_composites"] = [f"{model}{memory}" for model, memory in composites]
    return data


# ----------------------------------------------------------------------
# Figure 6: operation redundancy vs issue model
# ----------------------------------------------------------------------
def figure6_data(runner: SweepRunner,
                 issue_models: Sequence[int] = tuple(range(1, 9)),
                 ) -> Dict[str, List[float]]:
    """Mean redundancy (discarded/executed) per discipline line."""
    data: Dict[str, List[float]] = {}
    for label, discipline, window, mode in discipline_lines():
        data[label] = [
            runner.mean_redundancy(_config(discipline, window, mode, model, "A"))
            for model in issue_models
        ]
    data["_issue_models"] = list(issue_models)
    return data


# ----------------------------------------------------------------------
# Value speculation (beyond the paper): IPC per value-predictor kind
# ----------------------------------------------------------------------
def value_speculation_data(runner: SweepRunner,
                           issue_models: Sequence[int] = (2, 8),
                           memory: str = "C",
                           kinds: Sequence[str] = (
                               "none", "last", "stride", "context",
                               "perfect",
                           )) -> Dict[str, List[float]]:
    """Geometric-mean IPC per value-predictor kind, dyn256/enlarged.

    Memory C (constant 3-cycle loads) is the slowest perfect memory in
    the grid -- the regime where hiding load latency behind a predicted
    operand pays the most, so the branch-only vs branch+value gap is
    clearest there.
    """
    data: Dict[str, List[float]] = {}
    for kind in kinds:
        data[kind] = [
            runner.mean_ipc(MachineConfig(
                discipline=Discipline.DYNAMIC,
                issue_model=model,
                memory=memory,
                branch_mode=BranchMode.ENLARGED,
                window_blocks=256,
                value_predictor=kind,
            ))
            for model in issue_models
        ]
    data["_issue_models"] = list(issue_models)
    return data


# ----------------------------------------------------------------------
# Section 3.1: static ALU:memory node ratio
# ----------------------------------------------------------------------
def static_ratio_data(runner: SweepRunner) -> Dict[str, float]:
    """Static ALU:MEM node ratio per benchmark (paper reports ~2.5)."""
    ratios = {}
    for name in runner.benchmarks:
        workload = runner.workload(name)
        alu, mem = workload.single.static_node_counts()
        ratios[name] = alu / mem if mem else float("inf")
    return ratios


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_series_table(title: str, columns: Sequence[str],
                        series: Dict[str, List[float]],
                        value_format: str = "{:7.3f}") -> str:
    """ASCII table: one row per series, one column per x position."""
    width = max(len(str(c)) for c in columns)
    width = max(width, 7)
    lines = [title]
    header = " " * 18 + " ".join(f"{str(c):>{width}s}" for c in columns)
    lines.append(header)
    for label, values in series.items():
        if label.startswith("_"):
            continue
        cells = " ".join(
            f"{value_format.format(v):>{width}s}" for v in values
        )
        lines.append(f"{label:18s}{cells}")
    return "\n".join(lines)
