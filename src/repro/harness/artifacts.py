"""Versioned on-disk store of prepared-workload artifacts.

Preparing a benchmark (compile, profile on the training input, enlarge,
functional traces on the evaluation input) is the expensive, per-program
half of the paper's flow; every timing point only *replays* the
resulting artifacts.  This store materializes those artifacts once --
programs as assembly text, traces in the binary format of
:mod:`repro.interp.trace_io` -- so any number of processes (the serial
runner, ``--jobs N`` pool workers, the bench harness) can load them
instead of re-compiling and re-tracing per point.

Layout, under ``REPRO_ARTIFACT_DIR`` (default:
``$REPRO_CACHE_DIR/workloads``)::

    v{ARTIFACT_VERSION}/{name}-s{scale}-{digest}/
        single.asm  enlarged.asm  single.trace  enlarged.trace
        manifest.json          # written last: the commit point

**Versioning rule.**  Two independent knobs invalidate artifacts:

* ``PREPARE_CACHE_VERSION`` feeds the content digest -- bump it when
  preparation *semantics* change (profiling, enlargement, tracing), so
  stale artifacts can never satisfy a lookup;
* ``ARTIFACT_VERSION`` names the directory layout -- bump it when the
  on-disk *format* changes (new files, manifest schema), stranding old
  trees without misreading them.

A directory without a valid ``manifest.json`` is invisible: the
manifest is written atomically after every artifact file, so a writer
killed mid-save leaves an ignorable partial directory, never a corrupt
load.  Concurrent writers of the same digest converge on identical
bytes, and the atomic manifest replace makes the race harmless.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from ..chaos.inject import current as chaos_current
from ..interp.trace_io import load_trace_file, save_trace_file
from ..machine.simulator import PreparedWorkload
from ..program.parser import parse_program
from ..program.printer import format_program
from ..telemetry.collector import Collector, NULL_COLLECTOR
from ..telemetry.logging import get_logger
from .cache import atomic_write_json

_LOG = get_logger("artifacts")

#: Bump to invalidate prepared artifacts after preparation-semantics
#: changes (the value is hashed into every artifact digest).
#: 2: traces record the per-load value stream (value prediction).
PREPARE_CACHE_VERSION = 2

#: Bump when the on-disk artifact layout or manifest schema changes.
ARTIFACT_VERSION = 1

#: The artifact files one prepared workload materializes to.
ARTIFACT_FILES = (
    "single.asm",
    "enlarged.asm",
    "single.trace",
    "enlarged.trace",
)

_MANIFEST = "manifest.json"


def default_artifact_root() -> str:
    """The artifact-store root directory (env-overridable)."""
    root = os.environ.get("REPRO_ARTIFACT_DIR")
    if root:
        return root
    cache = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
    return os.path.join(cache, "workloads")


def workload_digest(workload: Any, scale: int) -> str:
    """Content hash covering everything a prepared workload depends on."""
    hasher = hashlib.sha256()
    hasher.update(str(PREPARE_CACHE_VERSION).encode())
    hasher.update(workload.source.encode())
    for kind in ("train", "eval"):
        for fd, blob in sorted(workload.make_inputs(kind, scale).items()):
            hasher.update(str(fd).encode())
            hasher.update(blob)
    return hasher.hexdigest()[:16]


class ArtifactStore:
    """Load/save prepared workloads under a versioned directory tree.

    ``workload`` arguments are duck-typed: anything with ``name``,
    ``source``, ``make_inputs(kind, scale)`` and
    ``prepare(scale=...)`` (i.e. :class:`repro.workloads.base.Workload`)
    works; this module deliberately does not import the workload
    registry so the ``workloads`` package can call into it lazily
    without an import cycle.
    """

    def __init__(self, root: Optional[str] = None,
                 collector: Collector = NULL_COLLECTOR):
        self.root = root if root is not None else default_artifact_root()
        self.collector = collector

    # ------------------------------------------------------------------
    def _quarantine(self, directory: str, benchmark: str) -> None:
        """Move a corrupt artifact directory aside for post-mortem."""
        pen = os.path.join(self.root, ".quarantine")
        base = os.path.basename(directory)
        try:
            os.makedirs(pen, exist_ok=True)
            target = os.path.join(pen, base)
            suffix = 0
            while os.path.exists(target):
                suffix += 1
                target = os.path.join(pen, f"{base}.{suffix}")
            os.replace(directory, target)
        except OSError:
            return
        self.collector.count("artifacts.quarantined")
        _LOG.warning("artifacts_quarantined", benchmark=benchmark,
                     directory=directory, moved_to=target)
        eng = chaos_current()
        if eng is not None:
            eng.mark_recovered("artifacts.read")

    # ------------------------------------------------------------------
    def directory(self, workload: Any, scale: int) -> str:
        """The versioned directory one prepared workload lives in."""
        return os.path.join(
            self.root,
            f"v{ARTIFACT_VERSION}",
            f"{workload.name}-s{scale}-{workload_digest(workload, scale)}",
        )

    def _manifest(self, directory: str) -> Optional[Dict[str, Any]]:
        try:
            with open(os.path.join(directory, _MANIFEST),
                      encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict):
            return None
        if raw.get("artifact_version") != ARTIFACT_VERSION:
            return None
        if raw.get("prepare_version") != PREPARE_CACHE_VERSION:
            return None
        files = raw.get("files")
        if not isinstance(files, list) or set(files) != set(ARTIFACT_FILES):
            return None
        if not all(
            os.path.exists(os.path.join(directory, name)) for name in files
        ):
            return None
        return raw

    def contains(self, workload: Any, scale: int) -> bool:
        """Whether valid artifacts for this workload are on disk."""
        return self._manifest(self.directory(workload, scale)) is not None

    # ------------------------------------------------------------------
    def load(self, workload: Any, scale: int) -> Optional[PreparedWorkload]:
        """Rebuild a prepared workload from disk; None when absent/corrupt."""
        directory = self.directory(workload, scale)
        if self._manifest(directory) is None:
            return None
        eng = chaos_current()
        if eng is not None:
            rule = eng.act("artifacts.read", ("corrupt", "delay"))
            if rule is not None and rule.kind == "corrupt":
                self._quarantine(directory, workload.name)
                return None
        try:
            with open(os.path.join(directory, "single.asm"),
                      encoding="utf-8") as handle:
                single = parse_program(handle.read())
            with open(os.path.join(directory, "enlarged.asm"),
                      encoding="utf-8") as handle:
                enlarged = parse_program(handle.read())
            single_trace = load_trace_file(
                os.path.join(directory, "single.trace")
            )
            enlarged_trace = load_trace_file(
                os.path.join(directory, "enlarged.trace")
            )
        except Exception:  # noqa: BLE001 - any corruption means re-prepare
            self._quarantine(directory, workload.name)
            return None
        return PreparedWorkload(
            workload.name, single, enlarged, single_trace, enlarged_trace
        )

    def save(self, workload: Any, scale: int,
             prepared: PreparedWorkload) -> str:
        """Materialize one prepared workload; returns its directory.

        The manifest is written last (atomically), so a partially
        written directory never satisfies a later :meth:`load`.
        """
        directory = self.directory(workload, scale)
        eng = chaos_current()
        if eng is not None:
            eng.act("artifacts.write", ("io-error", "delay"))
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "single.asm"), "w",
                  encoding="utf-8") as handle:
            handle.write(format_program(prepared.single))
        with open(os.path.join(directory, "enlarged.asm"), "w",
                  encoding="utf-8") as handle:
            handle.write(format_program(prepared.enlarged))
        save_trace_file(prepared.single_trace,
                        os.path.join(directory, "single.trace"))
        save_trace_file(prepared.enlarged_trace,
                        os.path.join(directory, "enlarged.trace"))
        atomic_write_json(os.path.join(directory, _MANIFEST), {
            "artifact_version": ARTIFACT_VERSION,
            "prepare_version": PREPARE_CACHE_VERSION,
            "benchmark": workload.name,
            "scale": scale,
            "digest": workload_digest(workload, scale),
            "files": list(ARTIFACT_FILES),
        })
        return directory

    def ensure(self, workload: Any, scale: int) -> str:
        """Make sure artifacts exist on disk, preparing them if missing.

        Unlike :meth:`load`, the prepared objects are not returned (or
        retained): this is the parent-side step of a parallel sweep,
        which only needs the bytes on disk for pool workers to load.
        """
        directory = self.directory(workload, scale)
        if self._manifest(directory) is not None:
            return directory
        prepared = workload.prepare(scale=scale)
        return self.save(workload, scale, prepared)
