"""Experiment harness: sweeps, caching, figure data, reporting.

Fault tolerance (see DESIGN.md "Fault tolerance"): points run through
:class:`PointExecutor` degrade to structured :class:`PointFailure`
records instead of aborting a sweep; :class:`SweepCheckpoint` makes
killed sweeps resumable.

Parallel execution (see DESIGN.md "Parallel execution"): sweeps run
through an :class:`ExecutionBackend` -- :class:`SerialBackend` in
process, or :class:`ProcessPoolBackend` under ``--jobs N``, which loads
prepared workloads from the versioned :class:`ArtifactStore` and mails
results back to the parent, the single writer of cache, checkpoint and
telemetry.
"""

from .artifacts import ArtifactStore, default_artifact_root, workload_digest
from .backend import (
    ExecutionBackend,
    PointOutcome,
    PointTask,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    plan_tasks,
)
from .cache import ResultCache, atomic_write_json
from .checkpoint import SweepCheckpoint, default_checkpoint_path
from .errors import (
    CacheCorruption,
    EngineDivergence,
    FAILURE_KINDS,
    HarnessError,
    PointFailure,
    PointTimeout,
    SimulationHang,
    TransientSimulationError,
    WorkerCrashed,
    WorkloadPrepareError,
    classify_error,
    is_transient,
)
from .executor import ExecutionPolicy, PointExecutor
from .figures import (
    FIGURE5_COMPOSITES,
    discipline_lines,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    render_series_table,
    static_ratio_data,
)
from .plot import ascii_chart
from .report import generate_report
from .runner import SweepRunner, default_benchmarks, default_scale, geometric_mean

__all__ = [
    "ArtifactStore",
    "CacheCorruption",
    "EngineDivergence",
    "ExecutionBackend",
    "ExecutionPolicy",
    "FAILURE_KINDS",
    "FIGURE5_COMPOSITES",
    "HarnessError",
    "PointExecutor",
    "PointFailure",
    "PointOutcome",
    "PointTask",
    "PointTimeout",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "SimulationHang",
    "SweepCheckpoint",
    "SweepRunner",
    "TransientSimulationError",
    "WorkerCrashed",
    "WorkloadPrepareError",
    "atomic_write_json",
    "classify_error",
    "default_artifact_root",
    "default_checkpoint_path",
    "is_transient",
    "default_benchmarks",
    "default_scale",
    "make_backend",
    "plan_tasks",
    "workload_digest",
    "discipline_lines",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "figure6_data",
    "ascii_chart",
    "generate_report",
    "geometric_mean",
    "render_series_table",
    "static_ratio_data",
]
