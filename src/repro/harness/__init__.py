"""Experiment harness: sweeps, caching, figure data, reporting.

Fault tolerance (see DESIGN.md "Fault tolerance"): points run through
:class:`PointExecutor` degrade to structured :class:`PointFailure`
records instead of aborting a sweep; :class:`SweepCheckpoint` makes
killed sweeps resumable.
"""

from .cache import ResultCache, atomic_write_json
from .checkpoint import SweepCheckpoint, default_checkpoint_path
from .errors import (
    CacheCorruption,
    EngineDivergence,
    FAILURE_KINDS,
    HarnessError,
    PointFailure,
    PointTimeout,
    SimulationHang,
    TransientSimulationError,
    WorkerCrashed,
    WorkloadPrepareError,
    classify_error,
    is_transient,
)
from .executor import ExecutionPolicy, PointExecutor
from .figures import (
    FIGURE5_COMPOSITES,
    discipline_lines,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    render_series_table,
    static_ratio_data,
)
from .plot import ascii_chart
from .report import generate_report
from .runner import SweepRunner, default_benchmarks, default_scale, geometric_mean

__all__ = [
    "CacheCorruption",
    "EngineDivergence",
    "ExecutionPolicy",
    "FAILURE_KINDS",
    "FIGURE5_COMPOSITES",
    "HarnessError",
    "PointExecutor",
    "PointFailure",
    "PointTimeout",
    "ResultCache",
    "SimulationHang",
    "SweepCheckpoint",
    "SweepRunner",
    "TransientSimulationError",
    "WorkerCrashed",
    "WorkloadPrepareError",
    "atomic_write_json",
    "classify_error",
    "default_checkpoint_path",
    "is_transient",
    "default_benchmarks",
    "default_scale",
    "discipline_lines",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "figure6_data",
    "ascii_chart",
    "generate_report",
    "geometric_mean",
    "render_series_table",
    "static_ratio_data",
]
