"""Experiment harness: sweeps, caching, figure data, reporting."""

from .cache import ResultCache
from .figures import (
    FIGURE5_COMPOSITES,
    discipline_lines,
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    render_series_table,
    static_ratio_data,
)
from .plot import ascii_chart
from .report import generate_report
from .runner import SweepRunner, default_benchmarks, default_scale, geometric_mean

__all__ = [
    "FIGURE5_COMPOSITES",
    "ResultCache",
    "SweepRunner",
    "default_benchmarks",
    "default_scale",
    "discipline_lines",
    "figure2_data",
    "figure3_data",
    "figure4_data",
    "figure5_data",
    "figure6_data",
    "ascii_chart",
    "generate_report",
    "geometric_mean",
    "render_series_table",
    "static_ratio_data",
]
