"""Value prediction: the data-speculation half of the speculation frontier.

The paper stops at control speculation; Mitrevski & Gušev (PAPERS.md)
study the performance potential of speculating on *data* too -- predict
a long-latency load's value, let its dependents issue early, and verify
when the real value arrives.  This module provides the predictor family
the dynamic engine draws from:

* ``last``    -- last-value prediction (Lipasti-style): a load site
  repeats its previous value.
* ``stride``  -- the site's values advance by a constant delta
  (induction variables, sequential pointers).
* ``context`` -- two-level finite-context-method (FCM): the site's
  recent value *history* selects the prediction, capturing repeating
  non-arithmetic sequences a stride cannot.
* ``perfect`` -- an oracle driven by the recorded functional trace (the
  engine supplies the actual value); the data-speculation analogue of
  the paper's perfect branch prediction.

Every realistic predictor sits behind a saturating-confidence estimator:
a site must predict correctly ``threshold`` times in a row (2-bit
saturating counter, reset on a miss) before the engine is allowed to
deliver its prediction speculatively, which keeps squash storms from
cold or chaotic sites out of the pipeline.

Tables are finite and direct-mapped: a site keys to a slot by
``zlib.crc32`` (deterministic across processes -- see the BTB's matching
fix in :mod:`repro.machine.predictor`) and a colliding site evicts the
previous occupant, tag and training state included.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

#: Names accepted by ``MachineConfig.value_predictor``.  ``none``
#: disables data speculation (the default, and the only value legal on
#: static machines); the rest are ordered weakest-first -- the chain the
#: ``dominance.value`` partial order checks.
VALUE_PREDICTOR_KINDS = ("none", "last", "stride", "context", "perfect")

#: Saturating-confidence geometry shared by the realistic predictors:
#: a 2-bit counter that must reach ``CONFIDENCE_THRESHOLD`` before a
#: prediction is delivered speculatively, and resets on any miss.
CONFIDENCE_MAX = 3
CONFIDENCE_THRESHOLD = 2

#: Default direct-mapped table capacity (slots), per predictor level.
DEFAULT_ENTRIES = 4096

#: Value-history length of the two-level context (FCM) predictor.
CONTEXT_HISTORY = 2


class ValuePredictor:
    """Protocol and shared machinery for load-value predictors.

    A *site* identifies one static load (block label + node index).  The
    engine drives the two-call protocol per dynamic load::

        predicted = vp.predict(site)      # None unless confident
        vp.update(site, actual, predicted)

    ``predict`` counts every lookup and returns a value only when the
    site's confidence counter has saturated past the threshold;
    ``update`` trains the table with the actual loaded value and settles
    the prediction's fate in the counters: ``confirmed`` when the
    delivered prediction matched, ``squashed`` when it did not.
    """

    kind = "base"
    #: True only on the trace-driven oracle (the engine special-cases it).
    perfect = False

    def __init__(self, entries: int = DEFAULT_ENTRIES,
                 threshold: int = CONFIDENCE_THRESHOLD,
                 maximum: int = CONFIDENCE_MAX):
        if entries <= 0:
            raise ValueError("value-predictor table needs at least one slot")
        if not 0 < threshold <= maximum:
            raise ValueError("confidence threshold must be in (0, maximum]")
        self.entries = entries
        self.threshold = threshold
        self.maximum = maximum
        self.lookups = 0
        self.predictions = 0
        self.confirmed = 0
        self.squashed = 0
        self._slot_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _slot(self, site: str) -> int:
        slot = self._slot_cache.get(site)
        if slot is None:
            slot = zlib.crc32(site.encode()) % self.entries
            self._slot_cache[site] = slot
        return slot

    def predict(self, site: str) -> Optional[int]:
        """The confident predicted value for ``site``, else None."""
        raise NotImplementedError

    def update(self, site: str, actual: int,
               predicted: Optional[int]) -> None:
        """Train with the actual value; settle a delivered prediction."""
        raise NotImplementedError

    def _settle(self, actual: int, predicted: Optional[int]) -> None:
        if predicted is None:
            return
        self.predictions += 1
        if predicted == actual:
            self.confirmed += 1
        else:
            self.squashed += 1

    @property
    def accuracy(self) -> float:
        """Fraction of delivered predictions confirmed (1.0 when unused)."""
        if self.predictions == 0:
            return 1.0
        return self.confirmed / self.predictions


class LastValuePredictor(ValuePredictor):
    """Predict that a load site repeats its previous value."""

    kind = "last"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        #: slot -> (site tag, last value, confidence)
        self._table: Dict[int, Tuple[str, int, int]] = {}

    def predict(self, site: str) -> Optional[int]:
        self.lookups += 1
        entry = self._table.get(self._slot(site))
        if entry is None or entry[0] != site or entry[2] < self.threshold:
            return None
        return entry[1]

    def update(self, site: str, actual: int,
               predicted: Optional[int]) -> None:
        self._settle(actual, predicted)
        slot = self._slot(site)
        entry = self._table.get(slot)
        if entry is None or entry[0] != site:
            # Cold or evicting: a colliding site replaces the occupant.
            self._table[slot] = (site, actual, 0)
            return
        _, last, confidence = entry
        if actual == last:
            if confidence < self.maximum:
                confidence += 1
        else:
            confidence = 0
        self._table[slot] = (site, actual, confidence)


class StridePredictor(ValuePredictor):
    """Predict ``last + stride`` where the stride must have repeated."""

    kind = "stride"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        #: slot -> (site tag, last value, stride, confidence)
        self._table: Dict[int, Tuple[str, int, int, int]] = {}

    def predict(self, site: str) -> Optional[int]:
        self.lookups += 1
        entry = self._table.get(self._slot(site))
        if entry is None or entry[0] != site or entry[3] < self.threshold:
            return None
        return entry[1] + entry[2]

    def update(self, site: str, actual: int,
               predicted: Optional[int]) -> None:
        self._settle(actual, predicted)
        slot = self._slot(site)
        entry = self._table.get(slot)
        if entry is None or entry[0] != site:
            self._table[slot] = (site, actual, 0, 0)
            return
        _, last, stride, confidence = entry
        observed = actual - last
        if observed == stride:
            if confidence < self.maximum:
                confidence += 1
        else:
            stride = observed
            confidence = 0
        self._table[slot] = (site, actual, stride, confidence)


class ContextPredictor(ValuePredictor):
    """Two-level FCM: recent value history selects the prediction.

    Level one is a direct-mapped per-site table holding the last
    ``CONTEXT_HISTORY`` values seen at the site; level two maps
    (site, history) contexts to a predicted next value with its own
    confidence counter.  Both levels are finite and evict on collision.
    A degenerate one-entry history makes this a last-value predictor
    with an extra indirection, which is why the dominance chain places
    ``context`` above ``stride`` and ``last``: it can memorise any
    repeating sequence they can, plus sequences they cannot.
    """

    kind = "context"

    def __init__(self, history: int = CONTEXT_HISTORY, **kwargs):
        super().__init__(**kwargs)
        if history < 1:
            raise ValueError("context history must be at least 1")
        self.history = history
        #: slot -> (site tag, value-history tuple)
        self._level1: Dict[int, Tuple[str, Tuple[int, ...]]] = {}
        #: slot -> (context tag, predicted value, confidence)
        self._level2: Dict[int, Tuple[Tuple[str, Tuple[int, ...]], int, int]] = {}

    def _context_slot(self, tag: Tuple[str, Tuple[int, ...]]) -> int:
        site, history = tag
        mixed = zlib.crc32(site.encode())
        for value in history:
            mixed = zlib.crc32(
                (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"), mixed
            )
        return mixed % self.entries

    def predict(self, site: str) -> Optional[int]:
        self.lookups += 1
        first = self._level1.get(self._slot(site))
        if first is None or first[0] != site:
            return None
        history = first[1]
        if len(history) < self.history:
            return None  # still warming the context up
        tag = (site, history)
        entry = self._level2.get(self._context_slot(tag))
        if entry is None or entry[0] != tag or entry[2] < self.threshold:
            return None
        return entry[1]

    def update(self, site: str, actual: int,
               predicted: Optional[int]) -> None:
        self._settle(actual, predicted)
        slot = self._slot(site)
        first = self._level1.get(slot)
        if first is None or first[0] != site:
            self._level1[slot] = (site, (actual,))
            return
        history = first[1]
        if len(history) >= self.history:
            # Train the (site, history) -> actual mapping before shifting.
            tag = (site, history)
            cslot = self._context_slot(tag)
            entry = self._level2.get(cslot)
            if entry is None or entry[0] != tag:
                self._level2[cslot] = (tag, actual, 0)
            else:
                _, value, confidence = entry
                if value == actual:
                    if confidence < self.maximum:
                        confidence += 1
                    self._level2[cslot] = (tag, value, confidence)
                else:
                    self._level2[cslot] = (tag, actual, 0)
        new_history = (history + (actual,))[-self.history:]
        self._level1[slot] = (site, new_history)


class PerfectValuePredictor(ValuePredictor):
    """Trace-driven oracle: every load predicts its actual value.

    The engine short-circuits the table lookup (it already holds the
    actual value from the functional trace) and only routes the
    counters through here, so telemetry reads uniformly across kinds.
    """

    kind = "perfect"
    perfect = True

    def predict(self, site: str) -> Optional[int]:
        # Unreachable in the engine (which uses the trace value), kept
        # for protocol completeness: without the actual value in hand an
        # oracle cannot answer.
        self.lookups += 1
        return None

    def update(self, site: str, actual: int,
               predicted: Optional[int]) -> None:
        self._settle(actual, predicted)


def make_value_predictor(kind: str) -> ValuePredictor:
    """Build a value predictor by axis name (``none`` is the caller's
    job to gate: it means "no predictor object at all")."""
    if kind == "last":
        return LastValuePredictor()
    if kind == "stride":
        return StridePredictor()
    if kind == "context":
        return ContextPredictor()
    if kind == "perfect":
        return PerfectValuePredictor()
    raise ValueError(f"unknown value predictor kind {kind!r}")


def load_site(label: str, index: int) -> str:
    """The site identity of the load at node ``index`` of block ``label``."""
    return f"{label}#{index}"


__all__ = [
    "VALUE_PREDICTOR_KINDS",
    "CONFIDENCE_MAX",
    "CONFIDENCE_THRESHOLD",
    "CONTEXT_HISTORY",
    "DEFAULT_ENTRIES",
    "ValuePredictor",
    "LastValuePredictor",
    "StridePredictor",
    "ContextPredictor",
    "PerfectValuePredictor",
    "make_value_predictor",
    "load_site",
]
