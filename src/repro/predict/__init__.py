"""Speculation subsystem: value prediction for the dynamic engine.

See :mod:`repro.predict.value` for the predictor family and DESIGN.md
§16 for how the dynamic engine consumes it (speculative operand
delivery with verify/squash/replay).
"""

from .value import (
    CONFIDENCE_MAX,
    CONFIDENCE_THRESHOLD,
    CONTEXT_HISTORY,
    ContextPredictor,
    DEFAULT_ENTRIES,
    LastValuePredictor,
    PerfectValuePredictor,
    StridePredictor,
    VALUE_PREDICTOR_KINDS,
    ValuePredictor,
    load_site,
    make_value_predictor,
)

__all__ = [
    "CONFIDENCE_MAX",
    "CONFIDENCE_THRESHOLD",
    "CONTEXT_HISTORY",
    "ContextPredictor",
    "DEFAULT_ENTRIES",
    "LastValuePredictor",
    "PerfectValuePredictor",
    "StridePredictor",
    "VALUE_PREDICTOR_KINDS",
    "ValuePredictor",
    "load_site",
    "make_value_predictor",
]
