"""The runtime side of chaos: a seeded engine behind named injection sites.

Sites call :func:`current` (one global read) and, when an engine is active,
``engine.act(site, kinds)``.  With chaos disabled — the overwhelmingly
common case — ``current()`` returns None and the site costs a single global
load plus a None check, mirroring the telemetry null-object discipline
(guarded by the tripwire test in tests/test_chaos.py).

This module imports only the stdlib and ``telemetry.logging`` so that the
machine engines and the harness error taxonomy can depend on it without
import cycles.  In particular :class:`ChaosCrash` cannot subclass the
harness's TransientSimulationError; harness.errors instead lists it
explicitly in its transient set and its worker-crash classification row.
"""
from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..telemetry.logging import get_logger
from .plan import FaultPlan, FaultRule

_LOG = get_logger("chaos")


class ChaosError(Exception):
    """Base class for injected chaos failures."""


class ChaosIOError(OSError):
    """An injected filesystem error (ENOSPC, EIO, ...).

    Subclasses OSError so every existing OSError-tolerant path — and the
    `is_transient` retry predicate — treats it exactly like the real thing.
    """


class ChaosCrash(ChaosError):
    """An injected worker crash mid-point (classified as worker-crash)."""


class ChaosEngine:
    """Seeded fault injector: counts per-site hits, fires matching rules.

    Thread-safety: sites are hit from the scheduler thread, HTTP handler
    threads and executor timeout threads concurrently, so all mutable
    state lives under one lock.  The engine keeps its own injected /
    recovered counters instead of writing to the shared telemetry
    collector (which is single-writer); the chaos harness merges them
    into the collector after an arm completes.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.site_hits: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}
        self.recovered: Dict[str, int] = {}
        self._rule_injections: List[int] = [0] * len(plan.rules)
        self._lock = threading.Lock()

    # -- matching ------------------------------------------------------
    def _match(self, site: str, kinds: Tuple[str, ...]) -> Optional[FaultRule]:
        with self._lock:
            hit = self.site_hits.get(site, 0) + 1
            self.site_hits[site] = hit
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site or rule.kind not in kinds:
                    continue
                if self._rule_injections[index] >= rule.limit():
                    continue
                fires = hit in rule.hits
                if not fires and rule.p:
                    fires = self.rng.random() < rule.p
                if not fires:
                    continue
                self._rule_injections[index] += 1
                key = f"{site}/{rule.kind}"
                self.injected[key] = self.injected.get(key, 0) + 1
                _LOG.warning("chaos_injected", site=site, kind=rule.kind,
                             hit=hit)
                return rule
        return None

    # -- the site API --------------------------------------------------
    def act(self, site: str, kinds: Tuple[str, ...]) -> Optional[FaultRule]:
        """Fire at `site` if a rule matches; return the rule for kinds the
        caller must enact itself (corrupt, torn-write, budget, http-*)."""
        rule = self._match(site, kinds)
        if rule is None:
            return None
        if rule.kind in ("delay", "hang"):
            time.sleep(rule.delay_s)
        elif rule.kind == "io-error":
            raise ChaosIOError(
                rule.errno_value(),
                f"chaos: injected {rule.errno_name} at {site}",
            )
        elif rule.kind == "crash":
            raise ChaosCrash(f"chaos: injected worker crash at {site}")
        return rule

    def mark_recovered(self, path: str) -> None:
        """Record that a recovery path absorbed an injected fault."""
        with self._lock:
            self.recovered[path] = self.recovered.get(path, 0) + 1


_ENGINE: Optional[ChaosEngine] = None


def current() -> Optional[ChaosEngine]:
    """The active engine, or None (the common, zero-cost case)."""
    return _ENGINE


def activate(engine: ChaosEngine) -> None:
    global _ENGINE
    if _ENGINE is not None:
        raise RuntimeError("a chaos engine is already active")
    _ENGINE = engine


def deactivate() -> None:
    global _ENGINE
    _ENGINE = None
