"""Deterministic fault injection (DESIGN.md §14).

Only the plan and engine layers are re-exported here; the run harness
(`repro.chaos.harness`) pulls in the whole sweep/service stack and must be
imported explicitly (the CLI does so lazily) to keep `repro.chaos` a leaf
that `machine.*` and `harness.errors` can depend on without cycles.
"""
from .inject import (
    ChaosCrash,
    ChaosEngine,
    ChaosError,
    ChaosIOError,
    activate,
    current,
    deactivate,
)
from .plan import (
    FAULT_KINDS,
    FAULT_SITES,
    PLAN_SCHEMA,
    FaultPlan,
    FaultRule,
    PlanError,
    smoke_plan,
)

__all__ = [
    "ChaosCrash",
    "ChaosEngine",
    "ChaosError",
    "ChaosIOError",
    "activate",
    "current",
    "deactivate",
    "FAULT_KINDS",
    "FAULT_SITES",
    "PLAN_SCHEMA",
    "FaultPlan",
    "FaultRule",
    "PlanError",
    "smoke_plan",
]
