"""Declarative, seeded fault plans for deterministic chaos runs.

A :class:`FaultPlan` is a JSON-serializable schedule of :class:`FaultRule`
entries.  Each rule names an injection *site* (a choke point instrumented in
the harness/service code), the fault *kind* to inject there, and *when* to
fire: either an explicit tuple of 1-based per-site hit indices (the smoke
schedules use only these, which makes runs exactly reproducible) or a
probability evaluated against the plan's seeded RNG.

The plan layer is deliberately stdlib-only and import-free of the rest of
the package so that any module can depend on it without cycles.
"""
from __future__ import annotations

import errno
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

PLAN_SCHEMA = "repro.chaos.plan/1"

# Every fault kind the engine knows how to inject.
FAULT_KINDS = (
    "io-error",     # raise an OSError (errno configurable; default ENOSPC)
    "corrupt",      # hand the caller corrupted bytes / force the corrupt path
    "torn-write",   # persist only a prefix of the record, then drop the handle
    "crash",        # raise ChaosCrash (worker died mid-point)
    "hang",         # sleep past the point timeout (clock-free for the sim)
    "delay",        # sleep a short, bounded time (latency, not failure)
    "budget",       # clamp the engine cycle watchdog to a tiny budget
    "http-503",     # answer the HTTP request with an injected 503
    "conn-reset",   # shut the client socket down mid-request
)

# The site catalogue: which kinds are meaningful where.  Sites are the
# stable public names used in plans, telemetry and DESIGN.md §14.
FAULT_SITES: Dict[str, Tuple[str, ...]] = {
    "artifacts.write": ("io-error", "delay"),
    "artifacts.read": ("corrupt", "delay"),
    "cache.read": ("corrupt", "delay"),
    "cache.write": ("io-error", "delay"),
    "checkpoint.write": ("io-error", "delay"),
    "journal.append": ("torn-write", "io-error", "delay"),
    "point.simulate": ("crash", "hang", "delay"),
    "engine.budget": ("budget",),
    "backend.dispatch": ("delay",),
    "http.request": ("http-503", "conn-reset", "delay"),
}


class PlanError(ValueError):
    """A fault plan or rule failed validation."""


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: inject `kind` at `site` on selected hits."""

    site: str
    kind: str
    hits: Tuple[int, ...] = ()
    p: float = 0.0
    max_injections: int = 0
    delay_s: float = 0.0
    budget: int = 0
    errno_name: str = "ENOSPC"

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise PlanError(f"unknown fault site {self.site!r}")
        if self.kind not in FAULT_SITES[self.site]:
            raise PlanError(
                f"kind {self.kind!r} is not valid at site {self.site!r}"
                f" (allowed: {', '.join(FAULT_SITES[self.site])})"
            )
        if not self.hits and not self.p:
            raise PlanError(
                f"rule {self.site}/{self.kind} fires never: give hits or p"
            )
        for hit in self.hits:
            if not isinstance(hit, int) or hit < 1:
                raise PlanError(f"hit indices are 1-based ints, got {hit!r}")
        if not 0.0 <= self.p <= 1.0:
            raise PlanError(f"p must be in [0, 1], got {self.p!r}")
        if self.delay_s < 0:
            raise PlanError(f"delay_s must be >= 0, got {self.delay_s!r}")
        if self.kind == "budget" and self.budget < 1:
            raise PlanError("budget faults need budget >= 1")
        if not hasattr(errno, self.errno_name):
            raise PlanError(f"unknown errno name {self.errno_name!r}")

    def limit(self) -> int:
        """Maximum number of times this rule may fire."""
        if self.max_injections:
            return self.max_injections
        return len(self.hits) or 1

    def errno_value(self) -> int:
        return getattr(errno, self.errno_name)

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.hits:
            document["hits"] = list(self.hits)
        if self.p:
            document["p"] = self.p
        if self.max_injections:
            document["max_injections"] = self.max_injections
        if self.delay_s:
            document["delay_s"] = self.delay_s
        if self.budget:
            document["budget"] = self.budget
        if self.errno_name != "ENOSPC":
            document["errno"] = self.errno_name
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultRule":
        if not isinstance(document, dict):
            raise PlanError(f"fault rule must be an object, got {document!r}")
        known = {"site", "kind", "hits", "p", "max_injections",
                 "delay_s", "budget", "errno"}
        unknown = set(document) - known
        if unknown:
            raise PlanError(f"unknown rule fields: {sorted(unknown)}")
        try:
            return cls(
                site=document["site"],
                kind=document["kind"],
                hits=tuple(document.get("hits", ())),
                p=float(document.get("p", 0.0)),
                max_injections=int(document.get("max_injections", 0)),
                delay_s=float(document.get("delay_s", 0.0)),
                budget=int(document.get("budget", 0)),
                errno_name=document.get("errno", "ENOSPC"),
            )
        except KeyError as exc:
            raise PlanError(f"fault rule missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            if isinstance(exc, PlanError):
                raise
            raise PlanError(f"bad fault rule {document!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of fault rules."""

    seed: int
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    name: str = "custom"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PLAN_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(document, dict):
            raise PlanError(f"fault plan must be an object, got {document!r}")
        schema = document.get("schema")
        if schema != PLAN_SCHEMA:
            raise PlanError(
                f"unsupported plan schema {schema!r} (want {PLAN_SCHEMA!r})"
            )
        rules = document.get("rules", [])
        if not isinstance(rules, list):
            raise PlanError("plan rules must be a list")
        try:
            seed = int(document["seed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanError("plan needs an integer seed") from exc
        return cls(
            seed=seed,
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            name=str(document.get("name", "custom")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(document)


def smoke_plan(seed: int, mode: str) -> FaultPlan:
    """The built-in schedule behind `repro chaos --smoke`.

    Hit indices were chosen against the execution order of the smoke grid
    so every rule actually fires and every injected fault lands on a path
    the stack can recover from (the convergence contract in DESIGN.md §14).
    """
    if mode not in ("sweep", "service"):
        raise PlanError(f"unknown chaos mode {mode!r}")
    rules = [
        FaultRule("artifacts.read", "corrupt", hits=(1,)),
        FaultRule("artifacts.write", "io-error", hits=(2,)),
        FaultRule("cache.read", "corrupt", hits=(3, 17)),
        FaultRule("cache.write", "io-error", hits=(5,)),
        FaultRule("point.simulate", "crash", hits=(7,)),
        FaultRule("point.simulate", "hang", hits=(12,), delay_s=6.5),
        FaultRule("point.simulate", "delay", hits=(25,), delay_s=0.05),
        FaultRule("engine.budget", "budget", hits=(20,), budget=64),
        FaultRule("backend.dispatch", "delay", hits=(1, 15), delay_s=0.02),
    ]
    if mode == "sweep":
        rules.append(FaultRule("checkpoint.write", "io-error", hits=(2,)))
    else:
        rules += [
            FaultRule("journal.append", "torn-write", hits=(3,)),
            FaultRule("journal.append", "io-error", hits=(4,)),
            FaultRule("http.request", "http-503", hits=(2,)),
            FaultRule("http.request", "conn-reset", hits=(4,)),
            FaultRule("http.request", "delay", hits=(6,), delay_s=0.02),
        ]
    return FaultPlan(seed=seed, rules=tuple(rules), name=f"smoke-{mode}")
