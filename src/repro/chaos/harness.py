"""The chaos run harness: fault-free vs faulted arms, then convergence.

``run_chaos`` executes the same workload twice in throwaway
cache/artifact directories -- a *baseline* arm with no chaos engine and
a *chaos* arm under the given :class:`FaultPlan` -- and then asserts the
convergence contract (DESIGN.md §14):

* the final result cache is byte-identical across arms;
* (service mode) journal replay across a daemon restart reaches the
  same terminal job states, with identical job ids;
* neither arm recorded a permanent point failure;
* no ``*.tmp`` debris anywhere, and no quarantine files in the
  baseline arm.

This module imports the whole sweep/service stack, so it is *not*
re-exported from ``repro.chaos`` -- the CLI imports it lazily.
"""
from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..harness.backend import PointTask, make_backend, plan_tasks
from ..harness.cache import result_key
from ..harness.checkpoint import SweepCheckpoint, default_checkpoint_path
from ..harness.executor import ExecutionPolicy
from ..harness.runner import SweepRunner
from ..machine.config import smoke_configuration_space
from ..telemetry.collector import Collector, MetricsCollector, NULL_COLLECTOR
from ..telemetry.logging import get_logger
from ..workloads.base import clear_prepared_cache
from .inject import ChaosEngine, activate, deactivate
from .plan import FaultPlan

_LOG = get_logger("chaos")

#: Per-attempt wall budget in the chaos arms.  Injected hangs sleep a
#: little past this so the timeout machinery (not patience) unwinds them.
CHAOS_TIMEOUT_S = 5.0

#: The chaos policy grants retries to injected timeouts and watchdog
#: hangs -- under a fault plan those are recoverable, not systematic.
CHAOS_RETRY_KINDS = ("timeout", "hang")


@dataclass
class ChaosReport:
    """Everything one ``run_chaos`` invocation learned."""

    mode: str
    plan_name: str
    seed: int
    converged: bool
    problems: List[str] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    recovered: Dict[str, int] = field(default_factory=dict)
    sites: List[str] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)
    baseline_wall_s: float = 0.0
    chaos_wall_s: float = 0.0
    cache_entries: int = 0
    job_states: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.chaos.report/1",
            "mode": self.mode,
            "plan": self.plan_name,
            "seed": self.seed,
            "converged": self.converged,
            "problems": list(self.problems),
            "injected": dict(sorted(self.injected.items())),
            "recovered": dict(sorted(self.recovered.items())),
            "sites": list(self.sites),
            "kinds": list(self.kinds),
            "baseline_wall_s": round(self.baseline_wall_s, 3),
            "chaos_wall_s": round(self.chaos_wall_s, 3),
            "cache_entries": self.cache_entries,
            "job_states": dict(sorted(self.job_states.items())),
        }


@dataclass
class _ArmResult:
    cache_bytes: bytes = b""
    cache_entries: int = 0
    failures: int = 0
    job_states: Dict[str, str] = field(default_factory=dict)
    wall_s: float = 0.0


def _chaos_policy() -> ExecutionPolicy:
    return ExecutionPolicy(timeout_s=CHAOS_TIMEOUT_S, retries=3,
                           retry_kinds=CHAOS_RETRY_KINDS)


def _walk_files(root: str) -> List[str]:
    out: List[str] = []
    for directory, _dirs, files in os.walk(root):
        for name in files:
            out.append(os.path.join(directory, name))
    return out


def _grid(limit: Optional[int]) -> List[Any]:
    configs = list(smoke_configuration_space())
    if limit is not None:
        configs = configs[:limit]
    return configs


# ----------------------------------------------------------------------
def _run_sweep_arm(workdir: str, benchmarks: Tuple[str, ...], scale: int,
                   limit: Optional[int], collector: Collector) -> _ArmResult:
    """Two sweep passes (cold, then warm) over the smoke grid."""
    configs = _grid(limit)
    arm = _ArmResult()
    for _pass in ("cold", "warm"):
        clear_prepared_cache()
        runner = SweepRunner(benchmarks=list(benchmarks), scale=scale,
                             collector=collector)
        backend = make_backend(runner, _chaos_policy(), jobs=1)
        total = len(configs) * len(benchmarks)
        checkpoint = SweepCheckpoint(
            default_checkpoint_path(), benchmarks=list(benchmarks),
            scale=scale, total=total, save_interval=10,
        )
        try:
            tasks = plan_tasks(
                configs, list(benchmarks),
                lambda name, config: result_key(name, config, scale),
                benchmark_major=True,
            )
            for benchmark, config, key in tasks:
                for outcome in backend.submit(
                    PointTask(benchmark, config, key)
                ):
                    if outcome.ok:
                        checkpoint.mark_done(outcome.task.key)
                    else:
                        checkpoint.mark_failed(outcome.task.key,
                                               outcome.failure)
            for outcome in backend.finish():
                if outcome.ok:
                    checkpoint.mark_done(outcome.task.key)
                else:
                    checkpoint.mark_failed(outcome.task.key, outcome.failure)
        finally:
            backend.close()
            try:
                if runner.cache is not None:
                    runner.cache.flush()
            except OSError:
                pass
            checkpoint.save()
        arm.failures += len(runner.failures)
    cache_path = os.path.join(workdir, "results.json")
    if os.path.exists(cache_path):
        with open(cache_path, "rb") as handle:
            arm.cache_bytes = handle.read()
        arm.cache_entries = len(json.loads(arm.cache_bytes))
    return arm


def _run_service_arm(workdir: str, benchmarks: Tuple[str, ...], scale: int,
                     limit: Optional[int],
                     collector: Collector) -> _ArmResult:
    """A daemon lifetime, a crash-restart, then a warm submit."""
    from ..service.client import JobFailed, ServiceClient
    from ..service.http_api import make_server
    from ..service.scheduler import JobScheduler

    import random

    journal_path = os.path.join(workdir, "service.journal.jsonl")
    spec: Dict[str, Any] = {"benchmarks": list(benchmarks), "grid": "smoke"}
    if limit is not None:
        spec["limit"] = limit
    arm = _ArmResult()

    def start_daemon(scheduler: JobScheduler):
        server = make_server(scheduler, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            timeout_s=60.0, retries=8, backoff_s=0.05, max_backoff_s=1.0,
            rng=random.Random(0),
        )
        return server, client

    def stop_daemon(server, scheduler: JobScheduler) -> None:
        server.shutdown()
        server.server_close()
        scheduler.stop(cancel_pending=False)

    # -- phase 1: cold daemon -----------------------------------------
    clear_prepared_cache()
    runner = SweepRunner(benchmarks=list(benchmarks), scale=scale,
                         collector=collector)
    scheduler = JobScheduler(runner, policy=_chaos_policy(), jobs=1,
                             journal_path=journal_path)
    scheduler.start()
    server, client = start_daemon(scheduler)
    try:
        client.wait_ready()
        job = client.submit(spec)
        try:
            client.wait(job["job_id"])
        except JobFailed as exc:
            arm.failures += 1
            _LOG.warning("chaos_cold_job_failed", job_id=job["job_id"],
                         error=str(exc))
    finally:
        stop_daemon(server, scheduler)

    # -- phase 2: restart (journal replay), then a warm submit --------
    clear_prepared_cache()
    runner = SweepRunner(benchmarks=list(benchmarks), scale=scale,
                         collector=collector)
    scheduler = JobScheduler(runner, policy=_chaos_policy(), jobs=1,
                             journal_path=journal_path)
    # The scheduler thread is NOT started yet: submitting first keeps
    # the journal append order deterministic (warm accept, then the
    # recovered job's state records), so hit-indexed journal faults land
    # on the same records in every run.
    server, client = start_daemon(scheduler)
    try:
        client.wait_ready()
        warm = client.submit(spec)
        scheduler.start()
        try:
            client.wait(warm["job_id"])
        except JobFailed as exc:
            arm.failures += 1
            _LOG.warning("chaos_warm_job_failed", job_id=warm["job_id"],
                         error=str(exc))
        for snapshot in client.jobs():
            arm.job_states[snapshot["job_id"]] = snapshot["state"]
            if snapshot["points"]["failed"]:
                arm.failures += snapshot["points"]["failed"]
    finally:
        stop_daemon(server, scheduler)

    cache_path = os.path.join(workdir, "results.json")
    if os.path.exists(cache_path):
        with open(cache_path, "rb") as handle:
            arm.cache_bytes = handle.read()
        arm.cache_entries = len(json.loads(arm.cache_bytes))
    return arm


# ----------------------------------------------------------------------
def _run_arm(mode: str, workdir: str, benchmarks: Tuple[str, ...],
             scale: int, limit: Optional[int], collector: Collector,
             engine: Optional[ChaosEngine]) -> _ArmResult:
    saved = {name: os.environ.get(name)
             for name in ("REPRO_CACHE_DIR", "REPRO_ARTIFACT_DIR")}
    os.environ["REPRO_CACHE_DIR"] = workdir
    os.environ["REPRO_ARTIFACT_DIR"] = os.path.join(workdir, "workloads")
    if engine is not None:
        activate(engine)
    start = time.perf_counter()
    try:
        if mode == "sweep":
            arm = _run_sweep_arm(workdir, benchmarks, scale, limit,
                                 collector)
        else:
            arm = _run_service_arm(workdir, benchmarks, scale, limit,
                                   collector)
    finally:
        if engine is not None:
            deactivate()
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        clear_prepared_cache()
    arm.wall_s = time.perf_counter() - start
    return arm


def run_chaos(mode: str, plan: FaultPlan,
              benchmarks: Tuple[str, ...] = ("grep",), scale: int = 1,
              limit: Optional[int] = None,
              collector: Collector = NULL_COLLECTOR) -> ChaosReport:
    """Baseline arm, chaos arm, convergence checks; returns the report.

    The chaos arms run serial (``jobs=1``): a process pool would fork
    the active engine into workers, where its counters and schedule
    could not be observed or kept deterministic.
    """
    if mode not in ("sweep", "service"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    engine = ChaosEngine(plan)
    report = ChaosReport(mode=mode, plan_name=plan.name, seed=plan.seed,
                         converged=False)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        base_dir = os.path.join(tmp, "baseline")
        chaos_dir = os.path.join(tmp, "chaos")
        os.makedirs(base_dir)
        os.makedirs(chaos_dir)
        _LOG.info("chaos_baseline_start", mode=mode)
        baseline = _run_arm(mode, base_dir, benchmarks, scale, limit,
                            MetricsCollector(), engine=None)
        _LOG.info("chaos_arm_start", mode=mode, plan=plan.name,
                  seed=plan.seed, rules=len(plan.rules))
        chaos = _run_arm(mode, chaos_dir, benchmarks, scale, limit,
                         collector, engine=engine)

        problems = report.problems
        if baseline.failures:
            problems.append(
                f"baseline arm recorded {baseline.failures} point"
                " failure(s); the fault-free run must be clean"
            )
        if chaos.failures:
            problems.append(
                f"chaos arm recorded {chaos.failures} permanent point"
                " failure(s); every injected fault must be recoverable"
            )
        if not baseline.cache_bytes:
            problems.append("baseline arm produced no result cache")
        if baseline.cache_bytes != chaos.cache_bytes:
            problems.append(
                "result caches diverge: chaos arm is not byte-identical"
                f" to the fault-free run ({len(baseline.cache_bytes)} vs"
                f" {len(chaos.cache_bytes)} bytes)"
            )
        if mode == "service" and baseline.job_states != chaos.job_states:
            problems.append(
                "terminal job states diverge:"
                f" baseline={baseline.job_states}"
                f" chaos={chaos.job_states}"
            )
        for path in _walk_files(tmp):
            if path.endswith(".tmp"):
                problems.append(f"partial-file debris left behind: {path}")
            if os.sep + ".quarantine" + os.sep in path and \
                    path.startswith(base_dir):
                problems.append(
                    f"quarantine leak in the fault-free arm: {path}"
                )

        report.injected = dict(engine.injected)
        report.recovered = dict(engine.recovered)
        report.sites = sorted({key.split("/")[0]
                               for key in engine.injected})
        report.kinds = sorted({key.split("/", 1)[1]
                               for key in engine.injected})
        report.baseline_wall_s = baseline.wall_s
        report.chaos_wall_s = chaos.wall_s
        report.cache_entries = baseline.cache_entries
        report.job_states = dict(chaos.job_states)
        report.converged = not problems

    # Fold the engine's private counters into the shared collector now
    # that both arms are done (main thread: single-writer safe).
    for key, value in engine.injected.items():
        collector.count(f"chaos.injected.{key.replace('/', '.')}", value)
    for key, value in engine.recovered.items():
        collector.count(f"chaos.recovered.{key}", value)
    collector.count("chaos.injected", sum(engine.injected.values()))
    collector.count("chaos.recovered", sum(engine.recovered.values()))
    return report
