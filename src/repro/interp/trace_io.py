"""Binary serialisation for execution traces.

Traces are the expensive artefact of the functional pass (hundreds of
thousands of dynamic blocks); persisting them lets every later process
replay timing simulations without re-interpreting the program.  The
format is a small header plus ``array`` dumps:

.. code-block:: text

    magic  b"RTRC"            4 bytes
    version u32               format revision
    exit_code i32
    retired u64, discarded u64
    n_labels u32, then each label as u16 length + utf-8 bytes
    n_blocks u32, then block_ids as u32[n]
    outcomes as u8[n]
    fault_indices as i32[n]
    n_addresses u32, then addresses as u64[n]
    n_load_values u32, then load_values as i64[n]   (version >= 2)

Version 2 added the per-load value stream (value-prediction
verification); a version-1 file still loads, with ``load_values`` left
empty -- the artifact store's ``PREPARE_CACHE_VERSION`` bump re-prepares
workloads whose traces predate the stream, so v1 loads only occur for
hand-written files.
"""

from __future__ import annotations

import struct
from array import array
from typing import BinaryIO

from .trace import Trace

_MAGIC = b"RTRC"
_VERSION = 2

#: Versions :func:`load_trace` still understands.
_READABLE_VERSIONS = (1, 2)


class TraceFormatError(Exception):
    """Raised for unreadable or mismatched trace files."""


def _read_exact(stream: BinaryIO, count: int, what: str) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`TraceFormatError`.

    Truncation is the common corruption mode (a killed writer, a partial
    copy); every load-path read goes through here so it always surfaces
    as a typed format error rather than a bare ``struct.error``.
    """
    data = stream.read(count)
    if len(data) != count:
        raise TraceFormatError(
            f"truncated trace: expected {count} byte(s) of {what},"
            f" got {len(data)}"
        )
    return data


def _read_array(stream: BinaryIO, typecode: str, count: int,
                what: str) -> array:
    """Read ``count`` array items, mapping EOF to :class:`TraceFormatError`.

    ``array.fromfile`` raises ``EOFError`` when the stream runs dry on an
    item boundary and ``ValueError`` when the leftover byte count is not
    a multiple of the item size; both are the same truncation to us.
    """
    values = array(typecode)
    try:
        values.fromfile(stream, count)
    except (EOFError, ValueError):
        raise TraceFormatError(
            f"truncated trace: expected {count} {what} item(s),"
            f" got {len(values)}"
        ) from None
    return values


def save_trace(trace: Trace, stream: BinaryIO) -> None:
    """Write ``trace`` to a binary stream."""
    stream.write(_MAGIC)
    stream.write(struct.pack("<IiQQ", _VERSION, trace.exit_code,
                             trace.retired_nodes, trace.discarded_nodes))
    stream.write(struct.pack("<I", len(trace.labels)))
    for label in trace.labels:
        encoded = label.encode("utf-8")
        stream.write(struct.pack("<H", len(encoded)))
        stream.write(encoded)
    stream.write(struct.pack("<I", len(trace.block_ids)))
    array("I", trace.block_ids).tofile(stream)
    array("B", trace.outcomes).tofile(stream)
    array("i", trace.fault_indices).tofile(stream)
    stream.write(struct.pack("<I", len(trace.addresses)))
    array("Q", trace.addresses).tofile(stream)
    stream.write(struct.pack("<I", len(trace.load_values)))
    array("q", trace.load_values).tofile(stream)


def load_trace(stream: BinaryIO) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises:
        TraceFormatError: bad magic, unsupported version, or a stream
            that ends before the header-declared payload does.
    """
    if _read_exact(stream, 4, "magic") != _MAGIC:
        raise TraceFormatError("not a trace file (bad magic)")
    version, exit_code, retired, discarded = struct.unpack(
        "<IiQQ", _read_exact(stream, struct.calcsize("<IiQQ"), "header")
    )
    if version not in _READABLE_VERSIONS:
        raise TraceFormatError(f"unsupported trace version {version}")
    trace = Trace()
    trace.exit_code = exit_code
    trace.retired_nodes = retired
    trace.discarded_nodes = discarded

    (n_labels,) = struct.unpack("<I", _read_exact(stream, 4, "label count"))
    for _ in range(n_labels):
        (length,) = struct.unpack(
            "<H", _read_exact(stream, 2, "label length")
        )
        try:
            label = _read_exact(stream, length, "label").decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(f"undecodable label: {exc}") from None
        trace.intern(label)

    (n_blocks,) = struct.unpack("<I", _read_exact(stream, 4, "block count"))
    block_ids = _read_array(stream, "I", n_blocks, "block id")
    outcomes = _read_array(stream, "B", n_blocks, "outcome")
    faults = _read_array(stream, "i", n_blocks, "fault index")
    (n_addresses,) = struct.unpack(
        "<I", _read_exact(stream, 4, "address count")
    )
    addresses = _read_array(stream, "Q", n_addresses, "address")
    if version >= 2:
        (n_values,) = struct.unpack(
            "<I", _read_exact(stream, 4, "load-value count")
        )
        load_values = _read_array(stream, "q", n_values, "load value")
    else:
        load_values = array("q")

    trace.block_ids = list(block_ids)
    trace.outcomes = list(outcomes)
    trace.fault_indices = list(faults)
    trace.addresses = list(addresses)
    trace.load_values = list(load_values)
    return trace


def save_trace_file(trace: Trace, path: str) -> None:
    """Write a trace to ``path``."""
    with open(path, "wb") as handle:
        save_trace(trace, handle)


def load_trace_file(path: str) -> Trace:
    """Read a trace from ``path``."""
    with open(path, "rb") as handle:
        return load_trace(handle)
