"""Functional interpreter: block-atomic execution with fault semantics.

This is the architectural reference model.  Each basic block executes
atomically: stores are buffered and registers snapshotted at block entry;
a signalling assert node discards the whole block (buffer dropped,
registers restored) and transfers control to its fault target, after
*speculatively* finishing the block's remaining nodes so that the trace
contains an address for every memory node the hardware would have had in
flight (see :mod:`repro.interp.trace`).

For speed, blocks are precompiled to tuples with small-integer opcodes;
the dispatch loop below is the single hot path of the functional pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa.ops import AluOp, MemWidth, NodeKind, SyscallOp
from ..program.block import BasicBlock
from ..program.program import GLOBAL_BASE, Program
from ..lang.codegen import STACK_TOP
from .memory import SimMemory
from .syscalls import SyscallHost
from .trace import NOT_TAKEN, OTHER, TAKEN, Trace

# Precompiled opcodes.
_OP_ALU = 0
_OP_LOAD = 1
_OP_STORE = 2
_OP_ASSERT = 3

# ALU sub-opcodes, ordered roughly by dynamic frequency.
_ALU_CODES = {
    AluOp.ADD: 0,
    AluOp.MOV: 1,
    AluOp.SUB: 2,
    AluOp.SEQ: 3,
    AluOp.SNE: 4,
    AluOp.SLT: 5,
    AluOp.SLE: 6,
    AluOp.SGT: 7,
    AluOp.SGE: 8,
    AluOp.AND: 9,
    AluOp.OR: 10,
    AluOp.XOR: 11,
    AluOp.SHL: 12,
    AluOp.SHR: 13,
    AluOp.SHRU: 14,
    AluOp.MUL: 15,
    AluOp.DIV: 16,
    AluOp.MOD: 17,
    AluOp.NOT: 18,
    AluOp.NEG: 19,
}

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000


class InterpreterError(Exception):
    """Raised when the simulated program misbehaves (traps)."""


class NodeBudgetExceeded(InterpreterError):
    """The program ran past the configured node budget."""


class _CompiledBlock:
    """A basic block precompiled for the dispatch loop."""

    __slots__ = ("label", "body", "term_kind", "term", "mem_count",
                 "datapath_size", "block")

    def __init__(self, block: BasicBlock):
        self.label = block.label
        self.block = block
        self.body: List[tuple] = []
        for index, node in enumerate(block.body):
            self.body.append(_compile_node(node, index))
        self.term_kind = block.terminator.kind
        self.term = _compile_terminator(block.terminator)
        self.mem_count = sum(1 for n in block.body if n.is_memory)
        self.datapath_size = block.datapath_size


def _operand_pair(operand) -> Tuple[int, int]:
    """Encode an operand as (is_imm, value-or-register)."""
    from ..isa.node import Imm

    if operand is None:
        return (0, 0)
    if isinstance(operand, Imm):
        return (1, operand.value)
    return (0, operand.index)


def _compile_node(node, index: int) -> tuple:
    kind = node.kind
    if kind is NodeKind.ALU:
        s1i, s1v = _operand_pair(node.src1)
        s2i, s2v = _operand_pair(node.src2)
        return (_OP_ALU, _ALU_CODES[node.op], node.dest, s1i, s1v, s2i, s2v)
    if kind is NodeKind.LOAD:
        return (_OP_LOAD, node.dest, node.base, node.offset,
                node.width is MemWidth.WORD)
    if kind is NodeKind.STORE:
        s1i, s1v = _operand_pair(node.src1)
        return (_OP_STORE, s1i, s1v, node.base, node.offset,
                node.width is MemWidth.WORD)
    if kind is NodeKind.ASSERT:
        return (_OP_ASSERT, node.src1.index, 1 if node.expect_taken else 0,
                node.target, index)
    raise InterpreterError(f"cannot compile node kind {kind}")


def _compile_terminator(node) -> tuple:
    kind = node.kind
    if kind is NodeKind.BRANCH:
        return (node.src1.index, node.target, node.alt_target)
    if kind is NodeKind.JUMP:
        return (node.target,)
    if kind is NodeKind.CALL:
        return (node.target, node.alt_target)
    if kind is NodeKind.RET:
        return ()
    if kind is NodeKind.SYSCALL:
        return (node.op, node.args, node.dest, node.target)
    raise InterpreterError(f"cannot compile terminator kind {kind}")


class InterpResult:
    """Outcome of a functional run."""

    def __init__(self, exit_code: int, host: SyscallHost, trace: Optional[Trace],
                 executed_nodes: int, executed_blocks: int):
        self.exit_code = exit_code
        self.host = host
        self.trace = trace
        self.executed_nodes = executed_nodes
        self.executed_blocks = executed_blocks

    @property
    def output(self) -> bytes:
        """Bytes the program wrote to fd 1."""
        return self.host.output_bytes(1)


class Interpreter:
    """Executes a translated program against a syscall host."""

    def __init__(self, program: Program, host: SyscallHost,
                 memory_size: int = STACK_TOP,
                 max_nodes: int = 200_000_000):
        self.program = program
        self.host = host
        self.memory = SimMemory(memory_size, program.data)
        self.max_nodes = max_nodes
        self._compiled: Dict[str, _CompiledBlock] = {
            label: _CompiledBlock(block) for label, block in program.blocks.items()
        }
        # Heap break for SBRK: just past the data segment, 16-byte aligned.
        self._brk = (GLOBAL_BASE + program.data_size + 15) & ~15
        self._stack_guard = memory_size - 0x8000

    # ------------------------------------------------------------------
    def run(self, record_trace: bool = True) -> InterpResult:
        """Run to EXIT; returns the result (with a trace if requested)."""
        program = self.program
        regs = [0] * 64
        mem = self.memory._bytes  # hot path: direct backing-store access
        mem_size = self.memory.size
        trace = Trace() if record_trace else None
        host = self.host

        label = program.entry
        call_stack: List[str] = []
        executed_nodes = 0
        executed_blocks = 0
        budget = self.max_nodes
        compiled = self._compiled

        while True:
            cblock = compiled[label]
            executed_blocks += 1
            executed_nodes += cblock.datapath_size
            if executed_nodes > budget:
                raise NodeBudgetExceeded(
                    f"exceeded {budget} nodes at block {label!r}"
                )

            snapshot = regs[:]
            buffer: Dict[int, int] = {}  # byte address -> byte value
            fault_index = -1
            fault_target: Optional[str] = None
            addresses: List[int] = [] if trace is not None else None
            lvalues: List[int] = [] if trace is not None else None

            for t in cblock.body:
                op = t[0]
                if op == _OP_ALU:
                    code = t[1]
                    a = t[4] if t[3] else regs[t[4]]
                    if code == 1:  # MOV
                        regs[t[2]] = a
                        continue
                    b = t[6] if t[5] else regs[t[6]]
                    if code == 0:
                        v = a + b
                    elif code == 2:
                        v = a - b
                    elif code == 3:
                        regs[t[2]] = 1 if a == b else 0
                        continue
                    elif code == 4:
                        regs[t[2]] = 1 if a != b else 0
                        continue
                    elif code == 5:
                        regs[t[2]] = 1 if a < b else 0
                        continue
                    elif code == 6:
                        regs[t[2]] = 1 if a <= b else 0
                        continue
                    elif code == 7:
                        regs[t[2]] = 1 if a > b else 0
                        continue
                    elif code == 8:
                        regs[t[2]] = 1 if a >= b else 0
                        continue
                    elif code == 9:
                        v = a & b
                    elif code == 10:
                        v = a | b
                    elif code == 11:
                        v = a ^ b
                    elif code == 12:
                        v = a << (b & 31)
                    elif code == 13:
                        v = a >> (b & 31)
                    elif code == 14:
                        v = (a & _MASK) >> (b & 31)
                    elif code == 15:
                        v = a * b
                    elif code == 16:
                        if b == 0:
                            raise InterpreterError(
                                f"division by zero in block {label!r}"
                            )
                        v = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            v = -v
                    elif code == 17:
                        if b == 0:
                            raise InterpreterError(
                                f"modulo by zero in block {label!r}"
                            )
                        v = abs(a) % abs(b)
                        if a < 0:
                            v = -v
                    elif code == 18:
                        v = ~a
                    else:  # 19 NEG
                        v = -a
                    v &= _MASK
                    if v & _SIGN:
                        v -= 0x100000000
                    regs[t[2]] = v
                elif op == _OP_LOAD:
                    address = regs[t[2]] + t[3]
                    if addresses is not None:
                        addresses.append(address)
                    if address < GLOBAL_BASE or address + 4 > mem_size:
                        raise InterpreterError(
                            f"load from unmapped {address:#x} in {label!r}"
                        )
                    if t[4]:  # word
                        if buffer:
                            b0 = buffer.get(address)
                            b1 = buffer.get(address + 1)
                            b2 = buffer.get(address + 2)
                            b3 = buffer.get(address + 3)
                            v = (
                                (mem[address] if b0 is None else b0)
                                | (mem[address + 1] if b1 is None else b1) << 8
                                | (mem[address + 2] if b2 is None else b2) << 16
                                | (mem[address + 3] if b3 is None else b3) << 24
                            )
                        else:
                            v = int.from_bytes(mem[address:address + 4], "little")
                        if v & _SIGN:
                            v -= 0x100000000
                        regs[t[1]] = v
                    else:
                        cached = buffer.get(address) if buffer else None
                        regs[t[1]] = mem[address] if cached is None else cached
                    if lvalues is not None:
                        lvalues.append(regs[t[1]])
                elif op == _OP_STORE:
                    address = regs[t[3]] + t[4]
                    if addresses is not None:
                        addresses.append(address)
                    if address < GLOBAL_BASE or address + 4 > mem_size:
                        raise InterpreterError(
                            f"store to unmapped {address:#x} in {label!r}"
                        )
                    value = t[2] if t[1] else regs[t[2]]
                    if t[5]:  # word
                        value &= _MASK
                        buffer[address] = value & 0xFF
                        buffer[address + 1] = (value >> 8) & 0xFF
                        buffer[address + 2] = (value >> 16) & 0xFF
                        buffer[address + 3] = (value >> 24) & 0xFF
                    else:
                        buffer[address] = value & 0xFF
                else:  # _OP_ASSERT
                    truth = 1 if regs[t[1]] != 0 else 0
                    if truth != t[2]:
                        fault_index = t[4]
                        fault_target = t[3]
                        break

            if fault_index >= 0:
                # Speculatively finish the block so every memory node has a
                # recorded address, then discard all architectural effects.
                if addresses is not None:
                    self._speculative_finish(
                        cblock, fault_index, regs, buffer, addresses, lvalues
                    )
                regs[:] = snapshot
                if trace is not None:
                    trace.block_ids.append(trace.intern(label))
                    trace.outcomes.append(OTHER)
                    trace.fault_indices.append(fault_index)
                    trace.addresses.extend(addresses)
                    trace.load_values.extend(lvalues)
                    trace.discarded_nodes += cblock.datapath_size
                label = fault_target
                continue

            # Commit the store buffer.
            for address, byte in buffer.items():
                mem[address] = byte

            # Terminator.
            term = cblock.term
            kind = cblock.term_kind
            outcome = OTHER
            if kind is NodeKind.BRANCH:
                if regs[term[0]] != 0:
                    next_label = term[1]
                    outcome = TAKEN
                else:
                    next_label = term[2]
                    outcome = NOT_TAKEN
            elif kind is NodeKind.JUMP:
                next_label = term[0]
            elif kind is NodeKind.CALL:
                call_stack.append(term[1])
                next_label = term[0]
            elif kind is NodeKind.RET:
                if not call_stack:
                    raise InterpreterError(f"RET with empty call stack in {label!r}")
                next_label = call_stack.pop()
            else:  # SYSCALL
                sys_op, args, dest, next_label = term
                if sys_op is SyscallOp.EXIT:
                    if trace is not None:
                        trace.block_ids.append(trace.intern(label))
                        trace.outcomes.append(OTHER)
                        trace.fault_indices.append(-1)
                        trace.addresses.extend(addresses)
                        trace.load_values.extend(lvalues)
                        trace.retired_nodes += cblock.datapath_size
                        trace.exit_code = regs[args[0]] if args else 0
                    exit_code = regs[args[0]] if args else 0
                    self.host.exit_code = exit_code
                    return InterpResult(
                        exit_code, host, trace, executed_nodes, executed_blocks
                    )
                if sys_op is SyscallOp.GETC:
                    regs[dest] = host.getc(regs[args[0]])
                elif sys_op is SyscallOp.PUTC:
                    host.putc(regs[args[0]], regs[args[1]])
                elif sys_op is SyscallOp.SBRK:
                    regs[dest] = self._sbrk(regs[args[0]])
                elif sys_op is SyscallOp.READ:
                    buf_addr = regs[args[1]]
                    chunk = host.read_block(regs[args[0]], regs[args[2]])
                    if chunk:
                        if buf_addr < GLOBAL_BASE or buf_addr + len(chunk) > mem_size:
                            raise InterpreterError(
                                f"read into unmapped buffer {buf_addr:#x}"
                            )
                        mem[buf_addr:buf_addr + len(chunk)] = chunk
                    regs[dest] = len(chunk)
                elif sys_op is SyscallOp.WRITE:
                    buf_addr = regs[args[1]]
                    length = regs[args[2]]
                    if length < 0 or buf_addr < GLOBAL_BASE or buf_addr + length > mem_size:
                        raise InterpreterError(
                            f"write from unmapped buffer {buf_addr:#x}"
                        )
                    regs[dest] = host.write_block(
                        regs[args[0]], bytes(mem[buf_addr:buf_addr + length])
                    )

            if trace is not None:
                trace.block_ids.append(trace.intern(label))
                trace.outcomes.append(outcome)
                trace.fault_indices.append(-1)
                trace.addresses.extend(addresses)
                trace.load_values.extend(lvalues)
                trace.retired_nodes += cblock.datapath_size
            label = next_label

    # ------------------------------------------------------------------
    def _sbrk(self, size: int) -> int:
        """Grow the heap; returns the old break."""
        if size < 0:
            raise InterpreterError(f"sbrk with negative size {size}")
        old = self._brk
        new = (old + size + 3) & ~3
        if new >= self._stack_guard:
            raise InterpreterError("heap collided with the stack guard")
        self._brk = new
        return old

    def _speculative_finish(self, cblock: _CompiledBlock, fault_index: int,
                            regs: List[int], buffer: Dict[int, int],
                            addresses: List[int],
                            lvalues: List[int]) -> None:
        """Execute the post-fault tail of a block for address recording.

        Values may be garbage (they are discarded); faults inside the tail
        are swallowed, out-of-range addresses recorded as-is, and loads of
        unmapped memory produce zero.  Loads also record their (garbage)
        value so the load-value stream keeps its one-entry-per-load
        cursor discipline.
        """
        mem = self.memory._bytes
        mem_size = self.memory.size
        for t in cblock.body[fault_index + 1:]:
            op = t[0]
            try:
                if op == _OP_ALU:
                    code = t[1]
                    a = t[4] if t[3] else regs[t[4]]
                    if code == 1:
                        regs[t[2]] = a
                        continue
                    b = t[6] if t[5] else regs[t[6]]
                    if code in (16, 17) and b == 0:
                        regs[t[2]] = 0
                        continue
                    value = _SLOW_ALU[code](a, b)
                    regs[t[2]] = value
                elif op == _OP_LOAD:
                    address = (regs[t[2]] + t[3]) & _MASK
                    addresses.append(address)
                    if GLOBAL_BASE <= address and address + 4 <= mem_size:
                        if t[4]:
                            v = int.from_bytes(mem[address:address + 4], "little")
                            if v & _SIGN:
                                v -= 0x100000000
                            regs[t[1]] = v
                        else:
                            regs[t[1]] = mem[address]
                    else:
                        regs[t[1]] = 0
                    lvalues.append(regs[t[1]])
                elif op == _OP_STORE:
                    address = (regs[t[3]] + t[4]) & _MASK
                    addresses.append(address)
                    # Speculative stores never reach memory or the buffer.
                else:
                    pass  # nested assert on the discarded path: ignore
            except Exception:  # noqa: BLE001 - wrong-path garbage is fine
                if op == _OP_LOAD or op == _OP_STORE:
                    addresses.append(GLOBAL_BASE)
                    if op == _OP_LOAD:
                        lvalues.append(0)


def _wrap(v: int) -> int:
    v &= _MASK
    return v - 0x100000000 if v & _SIGN else v


_SLOW_ALU = {
    0: lambda a, b: _wrap(a + b),
    2: lambda a, b: _wrap(a - b),
    3: lambda a, b: 1 if a == b else 0,
    4: lambda a, b: 1 if a != b else 0,
    5: lambda a, b: 1 if a < b else 0,
    6: lambda a, b: 1 if a <= b else 0,
    7: lambda a, b: 1 if a > b else 0,
    8: lambda a, b: 1 if a >= b else 0,
    9: lambda a, b: _wrap(a & b),
    10: lambda a, b: _wrap(a | b),
    11: lambda a, b: _wrap(a ^ b),
    12: lambda a, b: _wrap(a << (b & 31)),
    13: lambda a, b: _wrap(a >> (b & 31)),
    14: lambda a, b: _wrap((a & _MASK) >> (b & 31)),
    15: lambda a, b: _wrap(a * b),
    16: lambda a, b: 0,
    17: lambda a, b: 0,
    18: lambda a, b: _wrap(~a),
    19: lambda a, b: _wrap(-a),
}


def run_program(program: Program, inputs=None, record_trace: bool = True,
                max_nodes: int = 200_000_000) -> InterpResult:
    """Convenience: run ``program`` with the given input streams.

    Args:
        program: translated program to execute.
        inputs: mapping fd -> bytes for input streams (fd 0 is stdin).
        record_trace: capture a :class:`Trace` for the timing simulator.
        max_nodes: abort threshold for runaway programs.
    """
    host = SyscallHost(inputs=inputs)
    interpreter = Interpreter(program, host, max_nodes=max_nodes)
    return interpreter.run(record_trace=record_trace)
