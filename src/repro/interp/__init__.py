"""Functional interpreter: architectural reference model and trace source."""

from .interpreter import (
    InterpResult,
    Interpreter,
    InterpreterError,
    NodeBudgetExceeded,
    run_program,
)
from .memory import MemoryFault, SimMemory
from .syscalls import EOF, SyscallError, SyscallHost
from .trace import NOT_TAKEN, OTHER, TAKEN, Trace

__all__ = [
    "EOF",
    "InterpResult",
    "Interpreter",
    "InterpreterError",
    "MemoryFault",
    "NodeBudgetExceeded",
    "NOT_TAKEN",
    "OTHER",
    "SimMemory",
    "SyscallError",
    "SyscallHost",
    "TAKEN",
    "Trace",
    "run_program",
]
