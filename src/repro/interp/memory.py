"""Flat byte-addressable simulated memory.

Layout (see :mod:`repro.program.program` and :mod:`repro.lang.codegen`):

* ``[0, 0x1000)`` -- unmapped guard page (null dereferences fail loudly);
* ``[GLOBAL_BASE, GLOBAL_BASE + data_size)`` -- globals and strings;
* heap -- grows upward from the end of the globals via SBRK;
* stack -- grows downward from ``STACK_TOP``.
"""

from __future__ import annotations

from ..program.program import GLOBAL_BASE


class MemoryFault(Exception):
    """An access outside mapped simulated memory."""

    def __init__(self, address: int, what: str):
        super().__init__(f"{what} at unmapped address {address:#x}")
        self.address = address


class SimMemory:
    """Byte-addressable memory with word/byte accessors (little endian)."""

    __slots__ = ("size", "_bytes")

    def __init__(self, size: int, data: bytes = b""):
        self.size = size
        self._bytes = bytearray(size)
        if data:
            if GLOBAL_BASE + len(data) > size:
                raise ValueError("data segment does not fit in memory")
            self._bytes[GLOBAL_BASE:GLOBAL_BASE + len(data)] = data

    def _check(self, address: int, width: int, what: str) -> None:
        if address < GLOBAL_BASE or address + width > self.size:
            raise MemoryFault(address, what)

    # ------------------------------------------------------------------
    def load_word(self, address: int) -> int:
        """Load a signed 32-bit word."""
        self._check(address, 4, "word load")
        raw = int.from_bytes(self._bytes[address:address + 4], "little")
        return raw - 0x100000000 if raw & 0x80000000 else raw

    def load_byte(self, address: int) -> int:
        """Load an unsigned byte (char is unsigned in Mini-C)."""
        self._check(address, 1, "byte load")
        return self._bytes[address]

    def store_word(self, address: int, value: int) -> None:
        """Store the low 32 bits of ``value``."""
        self._check(address, 4, "word store")
        self._bytes[address:address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def store_byte(self, address: int, value: int) -> None:
        """Store the low 8 bits of ``value``."""
        self._check(address, 1, "byte store")
        self._bytes[address] = value & 0xFF

    # ------------------------------------------------------------------
    def read_block(self, address: int, length: int) -> bytes:
        """Bulk read for tests and debugging."""
        self._check(address, length, "block read")
        return bytes(self._bytes[address:address + length])

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string for tests and debugging."""
        out = bytearray()
        for i in range(limit):
            byte = self.load_byte(address + i)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)
