"""Dynamic execution traces.

A trace records, per dynamic basic block instance:

* which block ran (as an index into an interned label table),
* its control outcome (taken / not-taken / other),
* whether an embedded assert signalled (and which one),
* the address of every memory node in the block, in node order, and
* the value loaded by every load node, in load order (the stream that
  drives value-prediction verification and the ``perfect`` oracle).

Because a faulted block's remaining memory nodes are executed
*speculatively* by the interpreter (matching what issued hardware would
have in flight), the number of recorded addresses for a block instance
always equals the block's static memory-node count, which lets the timing
simulator replay a trace with a single cursor.
"""

from __future__ import annotations

from typing import Dict, List

#: Control outcomes per dynamic block.
NOT_TAKEN = 0
TAKEN = 1
OTHER = 2  # jump, call, ret, syscall terminator, or a faulted block


class Trace:
    """A recorded dynamic execution of a translated program."""

    __slots__ = (
        "labels",
        "label_index",
        "block_ids",
        "outcomes",
        "fault_indices",
        "addresses",
        "load_values",
        "exit_code",
        "retired_nodes",
        "discarded_nodes",
    )

    def __init__(self) -> None:
        self.labels: List[str] = []
        self.label_index: Dict[str, int] = {}
        self.block_ids: List[int] = []
        self.outcomes: List[int] = []
        #: -1 when no assert signalled, else the body index of the assert
        self.fault_indices: List[int] = []
        self.addresses: List[int] = []
        #: one entry per load (in load order, faulted-block tails
        #: included), mirroring ``addresses``' single-cursor discipline
        self.load_values: List[int] = []
        self.exit_code: int = 0
        #: datapath nodes architecturally retired (excludes faulted blocks)
        self.retired_nodes: int = 0
        #: datapath nodes discarded by faulting blocks (functional view)
        self.discarded_nodes: int = 0

    # ------------------------------------------------------------------
    def intern(self, label: str) -> int:
        """Intern a block label, returning its stable index."""
        index = self.label_index.get(label)
        if index is None:
            index = len(self.labels)
            self.label_index[label] = index
            self.labels.append(label)
        return index

    def __len__(self) -> int:
        """Number of dynamic block instances recorded."""
        return len(self.block_ids)

    def label_of(self, position: int) -> str:
        """Label of the ``position``-th dynamic block."""
        return self.labels[self.block_ids[position]]
