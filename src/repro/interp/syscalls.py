"""Host-serviced system calls.

The paper's simulator passes embedded system calls to the operating
system it runs on and excludes them from the collected statistics; this
module is our equivalent host environment: byte-stream file descriptors
backed by Python ``bytes`` for input and ``bytearray`` for output.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

EOF = -1


class SyscallError(Exception):
    """A system call with bad arguments (unknown fd, etc.)."""


class SyscallHost:
    """File-descriptor table for the simulated program.

    Input descriptors are read-only byte streams; output descriptors
    accumulate written bytes.  A descriptor number can be either an input
    or an output, not both.  By convention workloads read fd 0 (and fd 3+
    for auxiliary inputs such as ``diff``'s second file) and write fd 1.
    """

    def __init__(self, inputs: Optional[Mapping[int, bytes]] = None,
                 output_fds: tuple = (1, 2)):
        self._inputs: Dict[int, bytes] = dict(inputs or {})
        self._cursors: Dict[int, int] = {fd: 0 for fd in self._inputs}
        self.outputs: Dict[int, bytearray] = {fd: bytearray() for fd in output_fds}
        for fd in self.outputs:
            if fd in self._inputs:
                raise SyscallError(f"fd {fd} is both input and output")
        #: filled in when the program exits
        self.exit_code: Optional[int] = None

    # ------------------------------------------------------------------
    def getc(self, fd: int) -> int:
        """Read one byte from ``fd``; EOF (-1) when exhausted."""
        if fd not in self._inputs:
            raise SyscallError(f"getc on unknown input fd {fd}")
        cursor = self._cursors[fd]
        stream = self._inputs[fd]
        if cursor >= len(stream):
            return EOF
        self._cursors[fd] = cursor + 1
        return stream[cursor]

    def putc(self, fd: int, value: int) -> None:
        """Append one byte to output ``fd``."""
        if fd not in self.outputs:
            raise SyscallError(f"putc on unknown output fd {fd}")
        self.outputs[fd].append(value & 0xFF)

    def read_block(self, fd: int, max_bytes: int) -> bytes:
        """Read up to ``max_bytes`` from ``fd`` (cf. read(2))."""
        if fd not in self._inputs:
            raise SyscallError(f"read on unknown input fd {fd}")
        if max_bytes < 0:
            raise SyscallError(f"read with negative count {max_bytes}")
        cursor = self._cursors[fd]
        stream = self._inputs[fd]
        chunk = stream[cursor:cursor + max_bytes]
        self._cursors[fd] = cursor + len(chunk)
        return chunk

    def write_block(self, fd: int, data: bytes) -> int:
        """Append ``data`` to output ``fd`` (cf. write(2))."""
        if fd not in self.outputs:
            raise SyscallError(f"write on unknown output fd {fd}")
        self.outputs[fd].extend(data)
        return len(data)

    def output_bytes(self, fd: int = 1) -> bytes:
        """The bytes written to an output descriptor so far."""
        return bytes(self.outputs[fd])
