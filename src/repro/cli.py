"""Command-line interface: ``repro-sim``.

Subcommands:

* ``run``     -- simulate one benchmark on one machine configuration
* ``figure``  -- print the data for one of the paper's figures (2-6)
* ``report``  -- write the full EXPERIMENTS.md (runs missing simulations)
* ``dump``    -- print a benchmark's translated assembly (or DOT CFG)
* ``compile`` -- compile and run a user Mini-C source file
* ``sweep``   -- run the paper's full 560-point space (resumable)
* ``list``    -- list benchmarks and configuration axes
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .harness.figures import (
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    render_series_table,
    static_ratio_data,
)
from .harness.report import generate_report
from .harness.runner import SweepRunner
from .machine.config import (
    BranchMode,
    Discipline,
    ISSUE_MODELS,
    MEMORY_CONFIGS,
    MachineConfig,
    WINDOW_SIZES,
)
from .program.printer import format_program
from .workloads import WORKLOADS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Melvin & Patt (ISCA 1991) reproduction simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one configuration point")
    run.add_argument("--benchmark", required=True, choices=sorted(WORKLOADS))
    run.add_argument("--discipline", choices=("static", "dynamic"),
                     default="dynamic")
    run.add_argument("--window", type=int, default=4,
                     help="window size in basic blocks (dynamic only)")
    run.add_argument("--issue", type=int, default=8,
                     choices=sorted(ISSUE_MODELS))
    run.add_argument("--memory", default="A", choices=sorted(MEMORY_CONFIGS))
    run.add_argument("--branch", default="single",
                     choices=[mode.value for mode in BranchMode])
    run.add_argument("--no-static-hints", action="store_true")
    run.add_argument("--scale", type=int, default=None)

    figure = sub.add_parser("figure", help="print one figure's data")
    figure.add_argument("number", type=int, choices=(2, 3, 4, 5, 6))
    figure.add_argument("--scale", type=int, default=None)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument("--scale", type=int, default=None)

    dump = sub.add_parser("dump", help="print translated assembly")
    dump.add_argument("--benchmark", required=True, choices=sorted(WORKLOADS))
    dump.add_argument("--enlarged", action="store_true")
    dump.add_argument("--dot", action="store_true",
                      help="emit a Graphviz CFG instead of assembly")
    dump.add_argument("--scale", type=int, default=None)

    compile_cmd = sub.add_parser(
        "compile", help="compile and run a Mini-C source file"
    )
    compile_cmd.add_argument("source", help="path to a Mini-C file")
    compile_cmd.add_argument("--stdin", default=None,
                             help="file whose bytes become fd 0")
    compile_cmd.add_argument("--dump-asm", action="store_true",
                             help="print translated assembly instead of running")
    compile_cmd.add_argument("--no-optimize", action="store_true")
    compile_cmd.add_argument("--simulate", metavar="DISCIPLINE",
                             choices=("static", "dynamic"), default=None,
                             help="also run a timing simulation")

    sweep = sub.add_parser(
        "sweep",
        help="run the paper's full 560-point configuration space "
             "(resumable; results land in the on-disk cache)",
    )
    sweep.add_argument("--benchmarks", default=None,
                       help="comma-separated subset (default: all five)")
    sweep.add_argument("--scale", type=int, default=None)
    sweep.add_argument("--limit", type=int, default=None,
                       help="stop after N uncached points (for budgeting)")

    sub.add_parser("list", help="list benchmarks and configuration axes")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = MachineConfig(
        discipline=Discipline(args.discipline),
        issue_model=args.issue,
        memory=args.memory,
        branch_mode=BranchMode(args.branch),
        window_blocks=args.window if args.discipline == "dynamic" else 1,
        static_hints=not args.no_static_hints,
    )
    runner = SweepRunner(scale=args.scale, verbose=True)
    result = runner.run_point(args.benchmark, config)
    print(result.summary())
    print(f"  retired nodes : {result.retired_nodes}")
    print(f"  executed nodes: {result.executed_nodes}")
    print(f"  cycles        : {result.cycles}")
    print(f"  faults        : {result.faults}")
    print(f"  cache hit rate: {result.cache_hit_rate:.4f}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = SweepRunner(scale=args.scale)
    number = args.number
    if number == 2:
        data = figure2_data(runner)
        table = render_series_table(
            "Figure 2: fraction of executed blocks per size bucket",
            data["buckets"],
            {"single": data["single"], "enlarged": data["enlarged"]},
        )
    elif number == 3:
        data = figure3_data(runner)
        table = render_series_table(
            "Figure 3: retired nodes/cycle vs issue model (memory A)",
            [str(m) for m in data["_issue_models"]], data,
        )
    elif number == 4:
        data = figure4_data(runner)
        table = render_series_table(
            "Figure 4: retired nodes/cycle vs memory config (issue 8)",
            data["_memories"], data,
        )
    elif number == 5:
        data = figure5_data(runner)
        table = render_series_table(
            "Figure 5: per-benchmark IPC on dyn4/enlarged composites",
            data["_composites"], data,
        )
    else:
        data = figure6_data(runner)
        table = render_series_table(
            "Figure 6: redundancy vs issue model (memory A)",
            [str(m) for m in data["_issue_models"]], data,
        )
    print(table)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    runner = SweepRunner(scale=args.scale)
    text = generate_report(runner)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    from .program.dot import program_to_dot

    runner = SweepRunner(scale=args.scale)
    workload = runner.workload(args.benchmark)
    program = workload.enlarged if args.enlarged else workload.single
    if args.dot:
        print(program_to_dot(program, title=args.benchmark))
    else:
        print(format_program(program))
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from .interp.interpreter import run_program
    from .lang.frontend import compile_source
    from .machine.simulator import prepare_workload, simulate

    with open(args.source, encoding="utf-8") as handle:
        source = handle.read()
    program = compile_source(source, optimize=not args.no_optimize)
    if args.dump_asm:
        print(format_program(program))
        return 0
    stdin = b""
    if args.stdin:
        with open(args.stdin, "rb") as handle:
            stdin = handle.read()
    result = run_program(program, inputs={0: stdin})
    sys.stdout.write(result.output.decode("latin-1"))
    print(f"[exit {result.exit_code}; "
          f"{result.trace.retired_nodes} nodes retired]", file=sys.stderr)
    if args.simulate:
        workload = prepare_workload(
            "cli", program, {0: stdin}, {0: stdin}
        )
        config = MachineConfig(
            discipline=Discipline(args.simulate),
            issue_model=8,
            memory="A",
            branch_mode=BranchMode.ENLARGED,
            window_blocks=4,
        )
        sim = simulate(workload, config)
        print(sim.summary(), file=sys.stderr)
    return result.exit_code


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .machine.config import full_configuration_space

    benchmarks = (
        [name.strip() for name in args.benchmarks.split(",")]
        if args.benchmarks else None
    )
    runner = SweepRunner(benchmarks=benchmarks, scale=args.scale)
    configs = list(full_configuration_space())
    total = len(configs) * len(runner.benchmarks)
    done = 0
    fresh = 0
    for config in configs:
        for name in runner.benchmarks:
            cached = (
                runner.cache.get(name, config, runner.scale)
                if runner.cache else None
            )
            if cached is None:
                if args.limit is not None and fresh >= args.limit:
                    print(f"limit reached: {done}/{total} points in cache")
                    return 0
                fresh += 1
            result = runner.run_point(name, config)
            done += 1
            if done % 50 == 0 or done == total:
                print(f"[{done}/{total}] {result.summary()}", file=sys.stderr)
    print(f"sweep complete: {total} points ({fresh} newly simulated)")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks:", ", ".join(sorted(WORKLOADS)))
    print("issue models:")
    for index, model in ISSUE_MODELS.items():
        print(f"  {index}: {model}")
    print("memory configs:")
    for letter, memory in MEMORY_CONFIGS.items():
        print(f"  {letter}: {memory}")
    print(f"window sizes: {WINDOW_SIZES}")
    print("branch modes:", ", ".join(mode.value for mode in BranchMode))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "dump": _cmd_dump,
        "compile": _cmd_compile,
        "sweep": _cmd_sweep,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
