"""Command-line interface: ``repro-sim``.

Subcommands:

* ``run``      -- simulate one benchmark on one machine configuration
* ``trace``    -- dump a per-cycle pipeline trace (Chrome tracing / JSONL)
* ``figure``   -- print the data for one of the paper's figures (2-6)
* ``report``   -- write the full EXPERIMENTS.md (runs missing simulations)
* ``dump``     -- print a benchmark's translated assembly (or DOT CFG)
* ``compile``  -- compile and run a user Mini-C source file
* ``sweep``    -- run the paper's full 560-point space (resumable)
* ``validate`` -- run the validation oracle over a grid (invariants,
  dominance orders, golden-baseline regression gating; see the
  "Validation & regression gating" section of DESIGN.md)
* ``bench``    -- time the serial and process backends
  (``--mode service`` benches the daemon: cold vs warm submits)
* ``profile``  -- profile a sweep under cProfile plus a sampling
  timer; writes ``BENCH_profile.json`` (hot-function table, cycle
  attribution, telemetry overhead) and a flamegraph-ready
  collapsed-stack file (see the "Profiling & metrics" section of
  DESIGN.md)
* ``serve``    -- run the long-lived simulation service daemon
* ``submit``   -- submit a grid job to a running daemon (``--wait``
  streams progress until it finishes)
* ``list``     -- list benchmarks and configuration axes

``sweep`` and ``report`` accept ``--telemetry`` (live progress plus
counters/timers) and ``--metrics-out FILE`` (write the aggregated
``telemetry.json``); see the "Observability" section of DESIGN.md.
The global ``--log-json`` flag (or ``REPRO_LOG_JSON=1``) switches every
diagnostic line to one structured JSON object per line.

Exit codes: 0 success, 1 fatal harness error, 3 some sweep points
failed (structured ``PointFailure`` records) or a submitted job
finished ``failed``, 4 the validation oracle found gating
(``error``-severity) findings, 5 the service rejected a job at
admission (typed 429-style response; retry later).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .harness.figures import (
    figure2_data,
    figure3_data,
    figure4_data,
    figure5_data,
    figure6_data,
    render_series_table,
)
from .harness.report import generate_report
from .harness.runner import SweepRunner
from .machine.config import (
    BranchMode,
    Discipline,
    ISSUE_MODELS,
    MEMORY_CONFIGS,
    MachineConfig,
    WINDOW_SIZES,
)
from .machine.predictor import PREDICTOR_KINDS
from .predict import VALUE_PREDICTOR_KINDS
from .program.printer import format_program
from .workloads import WORKLOADS


def _add_config_arguments(command: argparse.ArgumentParser) -> None:
    """The machine-configuration axes shared by ``run`` and ``trace``."""
    command.add_argument("--benchmark", required=True,
                         choices=sorted(WORKLOADS))
    command.add_argument("--discipline", choices=("static", "dynamic"),
                         default="dynamic")
    command.add_argument("--window", type=int, default=4,
                         help="window size in basic blocks (dynamic only)")
    command.add_argument("--issue", type=int, default=8,
                         choices=sorted(ISSUE_MODELS))
    command.add_argument("--memory", default="A",
                         choices=sorted(MEMORY_CONFIGS))
    command.add_argument("--branch", default="single",
                         choices=[mode.value for mode in BranchMode])
    command.add_argument("--predictor", default="twobit",
                         choices=PREDICTOR_KINDS,
                         help="branch predictor scheme (default: the"
                              " paper's 2-bit BTB)")
    command.add_argument("--value-predictor", default="none",
                         choices=VALUE_PREDICTOR_KINDS,
                         help="load-value predictor for speculative"
                              " operand delivery (dynamic machines only;"
                              " default: none)")
    command.add_argument("--optimal-schedule", action="store_true",
                         help="pack words with the exact solver instead"
                              " of the greedy list scheduler (static"
                              " machines only; see repro.optsched)")
    command.add_argument("--no-static-hints", action="store_true")
    command.add_argument("--scale", type=int, default=None)


def _config_from_args(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(
        discipline=Discipline(args.discipline),
        issue_model=args.issue,
        memory=args.memory,
        branch_mode=BranchMode(args.branch),
        window_blocks=args.window if args.discipline == "dynamic" else 1,
        static_hints=not args.no_static_hints,
        predictor=args.predictor,
        value_predictor=args.value_predictor,
        optimal_schedule=getattr(args, "optimal_schedule", False),
    )


def _add_grid_arguments(command: argparse.ArgumentParser,
                        default_benchmarks: Optional[str] = None) -> None:
    """The grid-spec axes shared by sweep/validate/bench/submit.

    One definition instead of a per-subcommand copy, so every grid verb
    spells its selection flags identically (and ``submit`` did not have
    to grow a third copy).
    """
    command.add_argument("--benchmarks", default=default_benchmarks,
                         help="comma-separated subset"
                              + (" (default: all five)"
                                 if default_benchmarks is None
                                 else f" (default: {default_benchmarks})"))
    command.add_argument("--scale", type=int, default=None,
                         help="input scale (default: REPRO_BENCH_SCALE or 1)")


def _benchmarks_from_args(args: argparse.Namespace) -> Optional[List[str]]:
    """The ``--benchmarks`` list, or None for the default set."""
    if not args.benchmarks:
        return None
    return [name.strip() for name in args.benchmarks.split(",")
            if name.strip()]


def _add_telemetry_arguments(command: argparse.ArgumentParser) -> None:
    """The observability flags shared by sweep/validate/report."""
    command.add_argument("--telemetry", action="store_true",
                         help="collect sweep counters and timings (live"
                              " progress line on grid runs)")
    command.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write aggregated telemetry.json (implies"
                              " --telemetry)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Melvin & Patt (ISCA 1991) reproduction simulator",
    )
    parser.add_argument("--log-json", action="store_true",
                        help="emit diagnostics as structured JSON lines"
                             " on stderr (same as REPRO_LOG_JSON=1)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one configuration point")
    _add_config_arguments(run)

    trace = sub.add_parser(
        "trace",
        help="simulate one point and dump its per-cycle pipeline trace",
    )
    _add_config_arguments(trace)
    trace.add_argument("-o", "--out", default=None,
                       help="output path (default: <benchmark>.trace.json"
                            " or .jsonl)")
    trace.add_argument("--format", choices=("chrome", "jsonl"),
                       default="chrome",
                       help="chrome://tracing JSON document, or one JSON"
                            " event per line")

    figure = sub.add_parser("figure", help="print one figure's data")
    figure.add_argument("number", type=int, choices=(2, 3, 4, 5, 6))
    figure.add_argument("--scale", type=int, default=None)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument("--scale", type=int, default=None)
    _add_telemetry_arguments(report)

    dump = sub.add_parser("dump", help="print translated assembly")
    dump.add_argument("--benchmark", required=True, choices=sorted(WORKLOADS))
    dump.add_argument("--enlarged", action="store_true")
    dump.add_argument("--dot", action="store_true",
                      help="emit a Graphviz CFG instead of assembly")
    dump.add_argument("--scale", type=int, default=None)

    schedule = sub.add_parser(
        "schedule",
        help="static schedule-quality study: per-block list/optimal/"
             "lower-bound makespans and per-loop II vs MII"
             " (see repro.optsched)",
    )
    schedule.add_argument("--benchmark", required=True,
                          choices=sorted(WORKLOADS))
    schedule.add_argument("--enlarged", action="store_true",
                          help="analyse the enlarged program (default:"
                               " the single-block translation)")
    schedule.add_argument("--issue", type=int, default=5,
                          choices=sorted(ISSUE_MODELS))
    schedule.add_argument("--memory", default="A",
                          choices=sorted(MEMORY_CONFIGS))
    schedule.add_argument("--scale", type=int, default=None)
    schedule.add_argument("--all-blocks", action="store_true",
                          help="list every block (default: only blocks"
                               " where the exact schedule beats the list"
                               " schedule)")

    compile_cmd = sub.add_parser(
        "compile", help="compile and run a Mini-C source file"
    )
    compile_cmd.add_argument("source", help="path to a Mini-C file")
    compile_cmd.add_argument("--stdin", default=None,
                             help="file whose bytes become fd 0")
    compile_cmd.add_argument("--dump-asm", action="store_true",
                             help="print translated assembly instead of running")
    compile_cmd.add_argument("--no-optimize", action="store_true")
    compile_cmd.add_argument("--simulate", metavar="DISCIPLINE",
                             choices=("static", "dynamic"), default=None,
                             help="also run a timing simulation")

    sweep = sub.add_parser(
        "sweep",
        help="run the paper's full 560-point configuration space "
             "(fault-tolerant and resumable; results land in the on-disk "
             "cache, failures in sweep.state.json)",
    )
    _add_grid_arguments(sweep)
    sweep.add_argument("--grid",
                       choices=("full", "smoke", "cache", "spec", "sched"),
                       default="full",
                       help="configuration grid: the paper's 560-point"
                            " space (full), the 40-point validation slice"
                            " (smoke), the per-workload cache-geometry"
                            " ladder (cache; honours each workload's"
                            " cache_memories), the 68-point value/"
                            "branch speculation grid (spec), or the"
                            " 24-point list-vs-optimal static scheduling"
                            " grid (sched)")
    sweep.add_argument("--limit", type=int, default=None,
                       help="stop after N uncached points (for budgeting)")
    _add_telemetry_arguments(sweep)
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run points across N worker processes (prepare"
                            " happens once per benchmark; workers load"
                            " artifacts from the store and results merge"
                            " back to the single-writer cache)")
    sweep.add_argument("--isolate", action="store_true",
                       help="run each point in a subprocess worker that is"
                            " terminated on timeout or crash (serial"
                            " backend only; --jobs N already isolates"
                            " points in worker processes)")
    sweep.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per point attempt")
    sweep.add_argument("--retries", type=int, default=2,
                       help="extra attempts for transient point failures"
                            " (exponential backoff; default 2)")
    sweep.add_argument("--max-cycles", type=int, default=None,
                       help="engine watchdog: abort a point past this many"
                            " simulated cycles (default REPRO_MAX_CYCLES"
                            " or ~8.6e9)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume from sweep.state.json: skip points"
                            " recorded as failed, reuse all cached results")
    sweep.add_argument("--retry-failed", action="store_true",
                       help="with --resume: re-attempt previously failed"
                            " points instead of carrying them forward")
    sweep.add_argument("--validate", action="store_true",
                       help="run the validation oracle inline: per-result"
                            " invariants as points merge, dominance orders"
                            " over the completed grid (findings land in"
                            " telemetry.json; error findings exit 4)")
    sweep.add_argument("--baseline", default=None, metavar="FILE",
                       help="with --validate (implied): also check results"
                            " against this golden baseline")
    sweep.add_argument("--rel-tol", type=float, default=None,
                       metavar="FRACTION",
                       help="relative tolerance for dominance comparisons"
                            " (default 0.02)")

    validate = sub.add_parser(
        "validate",
        help="run the validation oracle over a configuration grid:"
             " per-result invariants, the paper's dominance orders, and"
             " golden-baseline regression gating (--record / --check)",
    )
    _add_grid_arguments(validate)
    validate.add_argument("--grid", choices=("full", "smoke", "spec", "sched"),
                          default=None,
                          help="configuration grid to validate (default:"
                               " full; spec is the value/branch"
                               " speculation grid, sched the"
                               " list-vs-optimal scheduling grid)")
    validate.add_argument("--smoke", action="store_true",
                          help="validate the 40-config smoke grid instead"
                               " of the full 560-config space (same as"
                               " --grid smoke)")
    validate.add_argument("--record", action="store_true",
                          help="write the grid's golden baseline (refused"
                               " when the oracle itself finds errors)")
    validate.add_argument("--check", action="store_true",
                          help="check the grid against its golden baseline")
    validate.add_argument("--baseline", default=None, metavar="FILE",
                          help="baseline path (default:"
                               " baselines/<grid>-<benchmarks>.json)")
    validate.add_argument("--rel-tol", type=float, default=None,
                          metavar="FRACTION",
                          help="relative tolerance for dominance"
                               " comparisons (default 0.02)")
    _add_telemetry_arguments(validate)

    bench = sub.add_parser(
        "bench",
        help="time a small fixed sweep grid on the serial and process"
             " backends (--mode backends, writes BENCH_sweep.json) or"
             " cold/warm submits against an in-process service daemon"
             " (--mode service, writes BENCH_service.json)",
    )
    bench.add_argument("--mode", choices=("backends", "service"),
                       default="backends",
                       help="what to bench: execution backends (default)"
                            " or the service daemon's cold/warm path")
    _add_grid_arguments(bench, default_benchmarks="grep")
    bench.add_argument("--points", type=int, default=24,
                       help="grid points to time per backend (default 24;"
                            " backends mode only -- service mode always"
                            " submits the smoke grid)")
    bench.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="process-backend worker count (default: host"
                            " CPU count; backends mode only)")
    bench.add_argument("--status-requests", type=int, default=200,
                       help="status requests timed for the requests/s"
                            " figure (service mode; default 200)")
    bench.add_argument("-o", "--output", default=None,
                       help="output path (default: BENCH_sweep.json or"
                            " BENCH_service.json by mode)")

    profile = sub.add_parser(
        "profile",
        help="profile a sweep point (default) or the 40-config smoke"
             " grid under cProfile plus a sampling timer; writes"
             " BENCH_profile.json (top-N hot functions, phase spans,"
             " cycle attribution, telemetry overhead) and a"
             " flamegraph-ready collapsed-stack file",
    )
    _add_grid_arguments(profile, default_benchmarks="grep")
    profile.add_argument("--smoke", action="store_true",
                         help="profile the full smoke grid instead of one"
                              " representative point per benchmark")
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="hot-function table depth (default 15)")
    profile.add_argument("--interval", type=float, default=None,
                         metavar="SECONDS",
                         help="sampling period (default 0.005)")
    profile.add_argument("--overhead-repeats", type=int, default=2,
                         metavar="N",
                         help="best-of-N runs for the telemetry-overhead"
                              " figure (0 skips the measurement;"
                              " default 2)")
    profile.add_argument("-o", "--output", default="BENCH_profile.json",
                         help="profile document path"
                              " (default BENCH_profile.json)")
    profile.add_argument("--stacks-out", default="PROFILE_stacks.folded",
                         metavar="FILE",
                         help="collapsed-stack output: one 'frame;...;leaf"
                              " count' line per sampled stack, the input"
                              " format of flamegraph.pl and speedscope"
                              " (default PROFILE_stacks.folded)")

    serve = sub.add_parser(
        "serve",
        help="run the long-lived simulation service: keeps prepared"
             " workloads, the result cache and (with --jobs N) a worker"
             " pool resident between submitted jobs (see the 'Service"
             " layer' section of DESIGN.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737,
                       help="listen port (0 picks a free one; default 8737)")
    serve.add_argument("--scale", type=int, default=None,
                       help="the one input scale this daemon serves"
                            " (result-cache keys embed it)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run points across N worker processes")
    serve.add_argument("--max-queued", type=int, default=8, metavar="N",
                       help="admission bound: queued jobs beyond this are"
                            " rejected with a typed 429 (default 8)")
    serve.add_argument("--max-job-points", type=int, default=5600,
                       metavar="N",
                       help="admission bound: largest accepted job fan-out"
                            " (default 5600 = one full 560-config space"
                            " x 10 benchmarks)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="wall-clock budget per point attempt")
    serve.add_argument("--retries", type=int, default=2,
                       help="extra attempts for transient point failures")
    serve.add_argument("--max-cycles", type=int, default=None,
                       help="engine watchdog: abort a point past this many"
                            " simulated cycles")
    serve.add_argument("--validate", action="store_true",
                       help="run the validation oracle over each finished"
                            " job (per-job report in the job document)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")

    submit = sub.add_parser(
        "submit",
        help="submit one grid job to a running service daemon",
    )
    _add_grid_arguments(submit)
    submit.add_argument("--grid",
                        choices=("smoke", "full", "cache", "spec", "sched"),
                        default="smoke",
                        help="configuration grid to fan out (default:"
                             " smoke, 40 configs; cache is the"
                             " per-workload cache-geometry ladder; spec"
                             " is the value/branch speculation grid;"
                             " sched the list-vs-optimal scheduling grid)")
    submit.add_argument("--limit", type=int, default=None,
                        help="submit only the first N points of the grid")
    submit.add_argument("--url", default="http://127.0.0.1:8737",
                        help="service base URL")
    submit.add_argument("--wait", action="store_true",
                        help="stream progress events until the job reaches"
                             " a terminal state")
    submit.add_argument("--connect-retries", type=int, default=0,
                        metavar="N",
                        help="poll the daemon's /healthz up to N times"
                             " before submitting (startup races)")
    submit.add_argument("--expect-all-cached", action="store_true",
                        help="with --wait: exit non-zero unless every"
                             " point was served from the result cache"
                             " (CI warm-path assertion)")
    submit.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry transient failures (retryable"
                             " admission rejections, 5xx, connection"
                             " drops) up to N times with capped jittered"
                             " backoff honoring Retry-After (default 0)")
    submit.add_argument("--backoff", type=float, default=0.25,
                        metavar="SECONDS",
                        help="base retry backoff; doubles per attempt,"
                             " capped at 10s (default 0.25)")

    chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-injection drill: run the smoke grid"
             " twice (fault-free, then under a seeded FaultPlan) and"
             " assert convergence -- byte-identical result cache, same"
             " terminal job states, no partial files (see DESIGN.md"
             " 'Fault injection & chaos testing')",
    )
    _add_grid_arguments(chaos, default_benchmarks="grep")
    chaos.add_argument("--mode", choices=("sweep", "service"),
                       default="sweep",
                       help="exercise the sweep harness (cold+warm"
                            " passes) or the service daemon (cold run,"
                            " crash-restart replay, warm submit)")
    chaos.add_argument("--smoke", action="store_true",
                       help="use the built-in smoke FaultPlan (>= 8 fault"
                            " sites, >= 6 fault kinds; coverage is"
                            " asserted)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="FaultPlan seed (default 7)")
    chaos.add_argument("--plan", default=None, metavar="FILE",
                       help="load a FaultPlan JSON document instead of"
                            " the built-in smoke plan")
    chaos.add_argument("--limit", type=int, default=None,
                       help="keep only the first N grid points")
    chaos.add_argument("--plan-out", default=None, metavar="FILE",
                       help="write the effective FaultPlan JSON before"
                            " running (repro artifact for CI uploads)")
    _add_telemetry_arguments(chaos)

    sub.add_parser("list", help="list benchmarks and configuration axes")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from .telemetry import MetricsCollector

    config = _config_from_args(args)
    runner = SweepRunner(scale=args.scale, verbose=True,
                         collector=MetricsCollector())
    result = runner.run_point(args.benchmark, config)
    print(result.summary())
    print(f"  retired nodes : {result.retired_nodes}")
    print(f"  executed nodes: {result.executed_nodes}")
    print(f"  cycles        : {result.cycles}")
    print(f"  faults        : {result.faults}")
    print(f"  cache hit rate: {result.cache_hit_rate:.4f}")
    print(f"  issue util    : {result.issue_utilization:.4f}")
    print(f"  branch acc    : {result.branch_accuracy:.4f}"
          f" ({result.mispredicts} mispredicts"
          f" / {result.branch_lookups} lookups)")
    if result.config.value_predictor != "none":
        print(f"  value acc     : {result.value_accuracy:.4f}"
              f" ({result.value_confirmed} confirmed,"
              f" {result.value_squashed} squashed"
              f" / {result.value_predictions} delivered;"
              f" {result.value_replays} replays)")
    if result.config.optimal_schedule:
        # Fresh solves publish sched.* counters; a result served from
        # the cache predates this run's collector and has none.
        counters = runner.collector.counters
        blocks = counters.get("sched.blocks", 0)
        list_words = counters.get("sched.list_words", 0)
        if blocks and list_words:
            optimal_words = counters.get("sched.optimal_words", 0)
            gap = 100.0 * (list_words - optimal_words) / list_words
            print(f"  sched gap     : {gap:.2f}% static words"
                  f" ({list_words} list -> {optimal_words} optimal;"
                  f" {counters.get('sched.closed', 0)}/{blocks}"
                  f" blocks closed)")
    if result.window_samples:
        print(f"  avg window    : {result.avg_window_blocks:.2f} blocks")
    # Cycle attribution rides in ``extra`` on freshly simulated results
    # (a cache hit predates this run's collector and has none).
    buckets = {
        name[len("attr."):]: int(value)
        for name, value in sorted(result.extra.items())
        if name.startswith("attr.")
    }
    if buckets:
        total = sum(buckets.values()) or 1
        print("  cycle attribution:")
        for name, value in buckets.items():
            print(f"    {name:19s}: {value:>10d}"
                  f" ({100.0 * value / total:5.1f}%)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .machine.simulator import simulate
    from .telemetry import TraceCollector, write_chrome_trace, write_jsonl

    config = _config_from_args(args)
    runner = SweepRunner(scale=args.scale, use_cache=False)
    workload = runner.workload(args.benchmark)
    collector = TraceCollector()
    result = simulate(workload, config, collector=collector)
    suffix = ".trace.json" if args.format == "chrome" else ".trace.jsonl"
    out = args.out if args.out else f"{args.benchmark}{suffix}"
    if args.format == "chrome":
        write_chrome_trace(collector, out, benchmark=args.benchmark,
                           config=str(config))
    else:
        write_jsonl(collector, out)
    print(result.summary(), file=sys.stderr)
    print(f"wrote {out} ({len(collector.events)} events, "
          f"{result.cycles} cycles)")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = SweepRunner(scale=args.scale)
    number = args.number
    if number == 2:
        data = figure2_data(runner)
        table = render_series_table(
            "Figure 2: fraction of executed blocks per size bucket",
            data["buckets"],
            {"single": data["single"], "enlarged": data["enlarged"]},
        )
    elif number == 3:
        data = figure3_data(runner)
        table = render_series_table(
            "Figure 3: retired nodes/cycle vs issue model (memory A)",
            [str(m) for m in data["_issue_models"]], data,
        )
    elif number == 4:
        data = figure4_data(runner)
        table = render_series_table(
            "Figure 4: retired nodes/cycle vs memory config (issue 8)",
            data["_memories"], data,
        )
    elif number == 5:
        data = figure5_data(runner)
        table = render_series_table(
            "Figure 5: per-benchmark IPC on dyn4/enlarged composites",
            data["_composites"], data,
        )
    else:
        data = figure6_data(runner)
        table = render_series_table(
            "Figure 6: redundancy vs issue model (memory A)",
            [str(m) for m in data["_issue_models"]], data,
        )
    print(table)
    return 0


def _write_metrics(collector, path: str, context=None,
                   validation=None) -> None:
    import json

    from .stats.aggregate import telemetry_report

    document = telemetry_report(collector, context=context,
                                validation=validation)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    print(f"wrote {path}")


def _cmd_report(args: argparse.Namespace) -> int:
    from .telemetry import MetricsCollector

    collector = (
        MetricsCollector() if args.telemetry or args.metrics_out else None
    )
    runner = SweepRunner(scale=args.scale, collector=collector)
    text = generate_report(runner)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    if args.metrics_out:
        _write_metrics(collector, args.metrics_out)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    from .program.dot import program_to_dot

    runner = SweepRunner(scale=args.scale)
    workload = runner.workload(args.benchmark)
    program = workload.enlarged if args.enlarged else workload.single
    if args.dot:
        print(program_to_dot(program, title=args.benchmark))
    else:
        print(format_program(program))
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    """Per-block list-vs-optimal gap study and per-loop II vs MII."""
    from .machine.config import ISSUE_MODELS, MEMORY_CONFIGS
    from .optsched import analyze_program

    runner = SweepRunner(scale=args.scale)
    workload = runner.workload(args.benchmark)
    program = workload.enlarged if args.enlarged else workload.single
    issue = ISSUE_MODELS[args.issue]
    memory = MEMORY_CONFIGS[args.memory]
    analysis = analyze_program(program, issue, memory)

    line = "enlarged" if args.enlarged else "single"
    print(f"{args.benchmark} ({line}) on issue {issue} / memory {memory}")
    print(f"{'block':40s} {'nodes':>5s} {'list':>5s} {'opt':>5s}"
          f" {'LB':>4s} closed")
    shown = 0
    for solution in analysis.blocks:
        if not args.all_blocks and solution.gap == 0:
            continue
        shown += 1
        sched = solution.schedule
        print(f"{sched.label:40s} {sched.node_count:>5d}"
              f" {solution.list_makespan:>5d} {solution.makespan:>5d}"
              f" {solution.lower_bound:>4d}"
              f" {'yes' if solution.closed else 'NO'}")
    hidden = len(analysis.blocks) - shown
    if hidden:
        print(f"... {hidden} block(s) where the list schedule is already"
              f" optimal (--all-blocks shows them)")
    print(f"totals: {analysis.list_words} list words ->"
          f" {analysis.optimal_words} optimal"
          f" (lower bound {analysis.lower_bound_words};"
          f" gap {analysis.gap_percent:.2f}%;"
          f" {analysis.closed_blocks}/{len(analysis.blocks)}"
          f" blocks closed)")
    if analysis.loops:
        print()
        print("innermost loops (modulo scheduling):")
        print(f"{'block':40s} {'nodes':>5s} {'ResMII':>6s} {'RecMII':>6s}"
              f" {'MII':>4s} {'II':>4s} {'list':>5s} status")
        for loop in analysis.loops:
            status = ("optimal" if loop.closed
                      else "pipelined" if loop.pipelined else "fallback")
            print(f"{loop.label:40s} {loop.node_count:>5d}"
                  f" {loop.res_mii:>6d} {loop.rec_mii:>6d} {loop.mii:>4d}"
                  f" {loop.ii:>4d} {loop.list_makespan:>5d} {status}")
    elif args.enlarged:
        print("no innermost single-block loops in this program")
    else:
        print("no innermost single-block loops (try --enlarged: block"
              " enlargement merges loop bodies into self-looping blocks)")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from .interp.interpreter import run_program
    from .lang.frontend import compile_source
    from .machine.simulator import prepare_workload, simulate

    with open(args.source, encoding="utf-8") as handle:
        source = handle.read()
    program = compile_source(source, optimize=not args.no_optimize)
    if args.dump_asm:
        print(format_program(program))
        return 0
    stdin = b""
    if args.stdin:
        with open(args.stdin, "rb") as handle:
            stdin = handle.read()
    result = run_program(program, inputs={0: stdin})
    sys.stdout.write(result.output.decode("latin-1"))
    print(f"[exit {result.exit_code}; "
          f"{result.trace.retired_nodes} nodes retired]", file=sys.stderr)
    if args.simulate:
        workload = prepare_workload(
            "cli", program, {0: stdin}, {0: stdin}
        )
        config = MachineConfig(
            discipline=Discipline(args.simulate),
            issue_model=8,
            memory="A",
            branch_mode=BranchMode.ENLARGED,
            window_blocks=4,
        )
        sim = simulate(workload, config)
        print(sim.summary(), file=sys.stderr)
    return result.exit_code


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Fault-tolerant, optionally parallel sweep.

    The sweep loop is the single writer of the result cache, the
    checkpoint manifest and the telemetry document; execution backends
    (serial, or a process pool under ``--jobs N``) only produce
    ``PointOutcome`` messages.  Exit codes are deterministic: 0 on full
    success (or a budget-limited but failure-free run), 3 when the
    sweep completed but some points failed (structured ``PointFailure``
    records; summary on stderr), and 1 on a fatal harness error.
    """
    from .harness.backend import make_backend, plan_tasks, PointTask
    from .harness.cache import result_key
    from .harness.checkpoint import SweepCheckpoint, default_checkpoint_path
    from .harness.executor import ExecutionPolicy
    from .harness.runner import reset_zero_ipc_warning
    from .machine.config import (
        cache_configuration_space,
        full_configuration_space,
        sched_configuration_space,
        smoke_configuration_space,
        spec_configuration_space,
    )
    from .telemetry import MetricsCollector, ProgressLine

    if args.jobs < 1:
        print("fatal: --jobs must be >= 1", file=sys.stderr)
        return 1
    if args.jobs > 1 and args.isolate:
        print("fatal: --isolate applies to the serial backend; --jobs N"
              " already isolates points in worker processes",
              file=sys.stderr)
        return 1

    reset_zero_ipc_warning()
    benchmarks = _benchmarks_from_args(args)
    telemetry = args.telemetry or bool(args.metrics_out)
    collector = MetricsCollector() if telemetry else None
    validating = args.validate or bool(args.baseline)
    runner = SweepRunner(benchmarks=benchmarks, scale=args.scale,
                         collector=collector, max_cycles=args.max_cycles,
                         validate=validating)
    policy = ExecutionPolicy(
        timeout_s=args.timeout,
        retries=args.retries,
        isolate=args.isolate,
        max_cycles=args.max_cycles,
    )
    backend = make_backend(runner, policy, jobs=args.jobs)
    grid = getattr(args, "grid", "full")
    if grid == "cache":
        # The cache-geometry ladder differs per benchmark (workloads may
        # pin their own memory letters), so tasks are planned name-major
        # here instead of through the shared-config plan_tasks() path.
        task_list = [
            (name, config, result_key(name, config, runner.scale))
            for name in runner.benchmarks
            for config in cache_configuration_space(name)
        ]
        total = len(task_list)
    else:
        space = {
            "smoke": smoke_configuration_space,
            "spec": spec_configuration_space,
            "sched": sched_configuration_space,
        }.get(grid, full_configuration_space)
        configs = list(space())
        total = len(configs) * len(runner.benchmarks)

    checkpoint_path = default_checkpoint_path()
    checkpoint = None
    carried = {}
    if args.resume:
        loaded = SweepCheckpoint.load(checkpoint_path)
        if loaded is not None and loaded.compatible_with(
            runner.benchmarks, runner.scale
        ):
            checkpoint = loaded
            checkpoint.total = total
            if args.retry_failed:
                checkpoint.failures.clear()
            else:
                carried = dict(checkpoint.failures)
        else:
            print("resume: no compatible sweep.state.json; starting fresh",
                  file=sys.stderr)
    if checkpoint is None:
        checkpoint = SweepCheckpoint(
            checkpoint_path, runner.benchmarks, runner.scale, total,
            backend=backend.name,
        )
    else:
        checkpoint.backend = backend.name

    progress = ProgressLine(total) if telemetry else None
    done = 0
    fresh = 0
    failed = 0
    limited = False

    def handle(outcome) -> None:
        """Merge one backend outcome: checkpoint + progress accounting."""
        nonlocal done, failed
        done += 1
        task = outcome.task
        if outcome.failure is not None:
            failed += 1
            checkpoint.mark_failed(task.key, outcome.failure)
            line = f"FAILED({outcome.failure.kind}) {task.benchmark} {task.config}"
            if progress is not None:
                progress.update(done, line)
            else:
                print(f"[{done}/{total}] {line}", file=sys.stderr)
            return
        checkpoint.mark_done(task.key)
        if progress is not None:
            progress.update(done, f"{task.benchmark} {task.config}")
        elif done % 50 == 0 or done == total:
            print(f"[{done}/{total}] {outcome.result.summary()}",
                  file=sys.stderr)

    if grid == "cache":
        tasks = iter(task_list)
    else:
        tasks = plan_tasks(
            configs, runner.benchmarks,
            lambda name, config: result_key(name, config, runner.scale),
            benchmark_major=args.jobs > 1,
        )
    try:
        try:
            for name, config, key in tasks:
                prior = carried.get(key)
                if prior is not None:
                    # Known-failed on a previous run: carry the failure
                    # forward instead of burning time on a deterministic
                    # re-failure (--retry-failed opts out).
                    runner.failures.append(prior)
                    failed += 1
                    done += 1
                    if collector is not None:
                        collector.count("sweep.point.skipped_failed")
                    if progress is not None:
                        progress.update(done, f"skip {name} {config}")
                    continue
                hit = runner.cache_lookup(name, config)
                if hit is not None:
                    done += 1
                    checkpoint.mark_done(key)
                    if progress is not None:
                        progress.update(done, f"{name} {config}")
                    continue
                if args.limit is not None and fresh >= args.limit:
                    limited = True
                    break
                fresh += 1
                for outcome in backend.submit(PointTask(name, config, key)):
                    handle(outcome)
            for outcome in backend.finish():
                handle(outcome)
        finally:
            # A killed or crashing sweep must still leave a resumable
            # manifest behind, and pool workers must not outlive it.
            backend.close()
            if runner.cache is not None:
                try:
                    # Dirty entries survive a failed mid-sweep flush
                    # (ENOSPC and friends); this terminal retry is their
                    # last chance to land before the process exits.
                    runner.cache.flush()
                except OSError as exc:
                    print(f"warning: final cache flush failed: {exc}",
                          file=sys.stderr)
            checkpoint.save()
            if progress is not None:
                progress.finish()
    except Exception as exc:  # noqa: BLE001 - deterministic exit code 1
        print(f"fatal: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    if limited:
        print(f"limit reached: {done}/{total} points in cache")
    else:
        print(f"sweep complete: {total} points ({fresh} newly simulated,"
              f" {failed} failed)")
    report = None
    if validating:
        from .validate import run_oracle

        report = run_oracle(
            runner.results, rel_tol=args.rel_tol,
            baseline_path=args.baseline, scale=runner.scale,
            invariant_findings=runner.findings,
        )
        for line in report.summary_lines():
            print(line, file=sys.stderr)
    if args.metrics_out:
        _write_metrics(
            collector, args.metrics_out,
            context={"backend": backend.name, "jobs": args.jobs},
            validation=report.to_dict() if report is not None else None,
        )
    if runner.failures:
        kinds = sorted({failure.kind for failure in runner.failures})
        print(
            f"sweep: {len(runner.failures)} point(s) failed"
            f" ({', '.join(kinds)}); details in {checkpoint_path}",
            file=sys.stderr,
        )
        return 3
    if not limited:
        checkpoint.remove()
    if report is not None and not report.ok:
        return 4
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """The validation oracle as a standalone gate.

    Simulates (or serves from cache) every point of the chosen grid,
    then runs all applicable oracle layers: per-result invariants and
    cross-configuration dominance always, golden-baseline drift under
    ``--check``.  ``--record`` snapshots the grid's metrics as the new
    golden baseline -- refused when the oracle itself found errors, so a
    broken simulator cannot be enshrined as truth.

    Exit codes: 0 clean (warnings allowed), 4 gating findings, 1 fatal.
    """
    from .machine.config import (
        full_configuration_space,
        sched_configuration_space,
        smoke_configuration_space,
        spec_configuration_space,
    )
    from .telemetry import MetricsCollector, ProgressLine
    from .validate import default_baseline_path, record_baseline, run_oracle

    grid = args.grid or ("smoke" if args.smoke else "full")
    if args.smoke and args.grid not in (None, "smoke"):
        print("fatal: --smoke conflicts with --grid", file=sys.stderr)
        return 1
    benchmarks = _benchmarks_from_args(args)
    telemetry = args.telemetry or bool(args.metrics_out)
    collector = MetricsCollector() if telemetry else None
    runner = SweepRunner(benchmarks=benchmarks, scale=args.scale,
                         collector=collector, validate=True)
    space = {
        "smoke": smoke_configuration_space,
        "spec": spec_configuration_space,
        "sched": sched_configuration_space,
    }.get(grid, full_configuration_space)
    configs = list(space())
    total = len(configs) * len(runner.benchmarks)
    progress = ProgressLine(total) if telemetry else None
    done = 0
    try:
        try:
            for config in configs:
                for name in runner.benchmarks:
                    runner.run_point(name, config)
                    done += 1
                    if progress is not None:
                        progress.update(done, f"{name} {config}")
        finally:
            if progress is not None:
                progress.finish()
    except Exception as exc:  # noqa: BLE001 - deterministic exit code 1
        print(f"fatal: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    baseline = args.baseline or default_baseline_path(
        runner.benchmarks, grid=grid
    )
    report = run_oracle(
        runner.results,
        rel_tol=args.rel_tol,
        baseline_path=baseline if args.check else None,
        scale=runner.scale,
        invariant_findings=runner.findings,
    )
    for line in report.summary_lines():
        print(line)
    if args.record:
        if report.ok:
            record_baseline(runner.results, runner.scale, baseline)
            print(f"recorded golden baseline: {baseline}"
                  f" ({len(runner.results)} points)")
        else:
            print("refusing to record a golden baseline from a run the"
                  " oracle rejected", file=sys.stderr)
    if args.metrics_out:
        _write_metrics(
            collector, args.metrics_out,
            context={"grid": grid},
            validation=report.to_dict(),
        )
    return 0 if report.ok else 4


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.mode == "service":
        return _bench_service(args)
    return _bench_backends(args)


def _bench_backends(args: argparse.Namespace) -> int:
    """Time one fixed grid on the serial and process backends.

    Artifacts are materialized once up front and each backend runs
    against a throwaway result cache, so the timings compare dispatch +
    simulation throughput (what ``--jobs`` parallelizes), not compile or
    cache state.  Writes ``BENCH_sweep.json`` and prints a summary; the
    document records the host CPU count because the achievable speedup
    is bounded by it.
    """
    import json
    import os
    import tempfile
    import time

    from .harness.artifacts import default_artifact_root
    from .harness.backend import PointTask, make_backend, plan_tasks
    from .harness.cache import result_key
    from .harness.executor import ExecutionPolicy
    from .machine.config import full_configuration_space
    from .workloads.base import clear_prepared_cache

    benchmarks = _benchmarks_from_args(args) or ["grep"]
    cpu_count = os.cpu_count() or 1
    jobs = args.jobs if args.jobs is not None else max(2, cpu_count)
    probe = SweepRunner(benchmarks=benchmarks, scale=args.scale,
                        use_cache=False)
    scale = probe.scale
    configs = list(full_configuration_space())
    tasks = list(plan_tasks(
        configs, benchmarks,
        lambda name, config: result_key(name, config, scale),
        benchmark_major=True,
    ))[: args.points]

    # Pin the artifact root before swapping REPRO_CACHE_DIR (its default
    # lives under the cache dir), then materialize artifacts once so
    # both backends load the same on-disk workloads.
    os.environ["REPRO_ARTIFACT_DIR"] = default_artifact_root()
    for name in benchmarks:
        probe.prepare_artifacts(name)

    def timed(jobs_n: int, task_list=None) -> tuple:
        task_list = tasks if task_list is None else task_list
        clear_prepared_cache()
        with tempfile.TemporaryDirectory() as cache_dir:
            previous = os.environ.get("REPRO_CACHE_DIR")
            os.environ["REPRO_CACHE_DIR"] = cache_dir
            try:
                runner = SweepRunner(benchmarks=benchmarks, scale=scale)
                backend = make_backend(runner, ExecutionPolicy(),
                                       jobs=jobs_n)
                failures = 0
                results = []
                start = time.perf_counter()
                try:
                    for name, config, key in task_list:
                        for outcome in backend.submit(
                            PointTask(name, config, key)
                        ):
                            failures += 0 if outcome.ok else 1
                            if outcome.result is not None:
                                results.append(outcome.result)
                    for outcome in backend.finish():
                        failures += 0 if outcome.ok else 1
                        if outcome.result is not None:
                            results.append(outcome.result)
                finally:
                    backend.close()
                wall_s = time.perf_counter() - start
            finally:
                if previous is None:
                    os.environ.pop("REPRO_CACHE_DIR", None)
                else:
                    os.environ["REPRO_CACHE_DIR"] = previous
        return {
            "backend": backend.name,
            "jobs": jobs_n,
            "wall_s": round(wall_s, 3),
            "points_per_s": (
                round(len(task_list) / wall_s, 3) if wall_s else 0.0
            ),
            "failures": failures,
        }, results

    print(f"bench: {len(tasks)} points x {{serial, process x{jobs}}}"
          f" on {','.join(benchmarks)} (host: {cpu_count} CPU(s))",
          file=sys.stderr)
    serial, serial_results = timed(1)
    print(f"  serial      : {serial['wall_s']:.2f}s"
          f" ({serial['points_per_s']:.2f} points/s)", file=sys.stderr)
    process, _ = timed(jobs)
    print(f"  process x{jobs}  : {process['wall_s']:.2f}s"
          f" ({process['points_per_s']:.2f} points/s)", file=sys.stderr)
    speedup = (
        serial["wall_s"] / process["wall_s"] if process["wall_s"] else 0.0
    )
    # Time the full oracle (invariants + dominance) over the serial
    # results: what `sweep --validate` would add on top of simulation.
    from .validate import run_oracle

    validate_start = time.perf_counter()
    validation = run_oracle(serial_results, scale=scale)
    validate_s = time.perf_counter() - validate_start
    validate_overhead_pct = (
        100.0 * validate_s / serial["wall_s"] if serial["wall_s"] else 0.0
    )
    print(f"  validate    : {validate_s:.3f}s"
          f" ({validate_overhead_pct:.2f}% of serial wall,"
          f" {len(validation.findings)} finding(s))", file=sys.stderr)
    # Time value speculation's simulation cost: the same dynamic
    # configurations with and without a stride predictor, so the delta
    # isolates the speculation machinery (predictor tables, verify,
    # squash/replay bookkeeping) from everything else.
    import dataclasses

    dynamic_tasks = [
        (name, config, key) for name, config, key in plan_tasks(
            [c for c in configs
             if c.discipline is not Discipline.STATIC],
            benchmarks,
            lambda name, config: result_key(name, config, scale),
            benchmark_major=True,
        )
    ][: args.points]
    stride_tasks = []
    for name, config, _ in dynamic_tasks:
        config = dataclasses.replace(config, value_predictor="stride")
        stride_tasks.append(
            (name, config, result_key(name, config, scale))
        )
    plain, _ = timed(1, dynamic_tasks)
    value_spec, _ = timed(1, stride_tasks)
    value_spec_overhead_pct = (
        100.0 * (value_spec["wall_s"] - plain["wall_s"])
        / plain["wall_s"] if plain["wall_s"] else 0.0
    )
    print(f"  value spec  : {value_spec['wall_s']:.2f}s stride vs"
          f" {plain['wall_s']:.2f}s none"
          f" ({value_spec_overhead_pct:+.2f}% over"
          f" {len(stride_tasks)} dynamic points)", file=sys.stderr)
    from .telemetry.perfscope import host_block

    document = {
        "schema": "repro.bench/1",
        "host": host_block(),
        "grid": {
            "benchmarks": benchmarks,
            "points": len(tasks),
            "scale": scale,
        },
        "backends": {"serial": serial, "process": process},
        "speedup": round(speedup, 3),
        "validate": {
            "wall_s": round(validate_s, 4),
            "checked_results": validation.checked_results,
            "findings": len(validation.findings),
        },
        "validate_overhead_pct": round(validate_overhead_pct, 3),
        "value_spec": {
            "predictor": "stride",
            "dynamic_points": len(stride_tasks),
            "wall_none_s": plain["wall_s"],
            "wall_stride_s": value_spec["wall_s"],
            "failures": value_spec["failures"],
        },
        "value_spec_overhead_pct": round(value_spec_overhead_pct, 3),
    }
    output = args.output or "BENCH_sweep.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"speedup: {speedup:.2f}x; wrote {output}")
    return 1 if (serial["failures"] or process["failures"]) else 0


def _bench_service(args: argparse.Namespace) -> int:
    """Bench the daemon's headline win: cold vs warm identical submits.

    Spins up an in-process daemon (scheduler + HTTP server on an
    ephemeral port) over throwaway cache/artifact directories, submits
    the smoke grid twice through the real HTTP client, and times both:
    the cold submit pays prepare + simulate, the warm one must be served
    entirely from the resident result cache.  A status-endpoint hammer
    then measures request throughput.  Writes ``BENCH_service.json``.
    """
    import json
    import os
    import tempfile
    import threading
    import time

    from .service import JobScheduler, ServiceClient, make_server
    from .telemetry import MetricsCollector
    from .workloads.base import clear_prepared_cache

    benchmarks = _benchmarks_from_args(args) or ["grep"]
    spec = {"benchmarks": benchmarks, "grid": "smoke"}

    clear_prepared_cache()
    with tempfile.TemporaryDirectory() as tmp:
        saved = {
            name: os.environ.get(name)
            for name in ("REPRO_CACHE_DIR", "REPRO_ARTIFACT_DIR")
        }
        os.environ["REPRO_CACHE_DIR"] = tmp
        os.environ["REPRO_ARTIFACT_DIR"] = os.path.join(tmp, "workloads")
        try:
            runner = SweepRunner(scale=args.scale,
                                 collector=MetricsCollector())
            scheduler = JobScheduler(
                runner, journal_path=os.path.join(tmp, "journal.jsonl")
            )
            scheduler.start()
            server = make_server(scheduler, port=0, quiet=True)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}"
            )
            try:
                client.wait_ready()

                def submit_and_wait() -> tuple:
                    start = time.perf_counter()
                    job = client.submit(spec)
                    final = client.wait(job["job_id"])
                    return time.perf_counter() - start, final

                total = len(benchmarks) * 40  # smoke grid: 40 configs
                print(f"bench service: {total}-point smoke grid on"
                      f" {','.join(benchmarks)}, cold then warm",
                      file=sys.stderr)
                cold_s, cold_job = submit_and_wait()
                print(f"  cold submit : {cold_s:.2f}s"
                      f" ({cold_job['points']['fresh']} simulated)",
                      file=sys.stderr)
                warm_s, warm_job = submit_and_wait()
                print(f"  warm submit : {warm_s:.3f}s"
                      f" ({warm_job['points']['cached']} cache hits)",
                      file=sys.stderr)

                requests = max(1, args.status_requests)
                start = time.perf_counter()
                for _ in range(requests):
                    client.job(warm_job["job_id"], include_results=False)
                status_wall = time.perf_counter() - start
                requests_per_s = requests / status_wall if status_wall else 0.0
                print(f"  status      : {requests} requests in"
                      f" {status_wall:.2f}s ({requests_per_s:.0f} req/s)",
                      file=sys.stderr)
            finally:
                server.shutdown()
                server.server_close()
                scheduler.stop()
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
            clear_prepared_cache()

    from .telemetry.perfscope import host_block

    document = {
        "schema": "repro.bench.service/1",
        "host": host_block(),
        "grid": {
            "benchmarks": benchmarks,
            "grid": "smoke",
            "points": total,
            "scale": runner.scale,
        },
        "cold": {
            "wall_s": round(cold_s, 3),
            "points": cold_job["points"],
        },
        "warm": {
            "wall_s": round(warm_s, 4),
            "points": warm_job["points"],
            "counters": warm_job.get("counters", {}),
        },
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s else 0.0,
        "status_requests_per_s": round(requests_per_s, 1),
    }
    output = args.output or "BENCH_service.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"warm speedup: {document['warm_speedup']:.1f}x; wrote {output}")
    failed = cold_job["points"]["failed"] + warm_job["points"]["failed"]
    warm_misses = warm_job["points"]["fresh"]
    if warm_misses:
        print(f"bench service: warm submit re-simulated {warm_misses}"
              " point(s); the resident cache is not working", file=sys.stderr)
    return 1 if (failed or warm_misses) else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile a sweep under cProfile plus the sampling timer.

    One run, three instruments: cProfile supplies exact call counts and
    internal times (the top-N table), the :class:`SamplingProfiler`
    supplies collapsed stacks for flamegraphs, and the enabled
    ``MetricsCollector`` supplies phase spans and cycle attribution.
    A separate unprofiled pass (best-of ``--overhead-repeats``) times
    the same grid with the collector disabled and enabled, so the
    document carries the measured cost of turning telemetry on.

    The result cache is bypassed throughout: a profile of cache reads
    would say nothing about the simulator.
    """
    import json
    import time

    from .machine.config import smoke_configuration_space
    from .stats.aggregate import attribution_breakdown, span_totals
    from .telemetry import MetricsCollector
    from .telemetry.perfscope import (
        DEFAULT_INTERVAL_S,
        SamplingProfiler,
        host_block,
        measure_overhead,
        profile_call,
    )

    benchmarks = _benchmarks_from_args(args) or ["grep"]
    if args.smoke:
        configs = list(smoke_configuration_space())
    else:
        # One representative point: the paper's headline machine
        # (dynamic, 4-block window, 8-wide issue, memory A, enlarged).
        configs = [MachineConfig(
            discipline=Discipline.DYNAMIC, issue_model=8, memory="A",
            branch_mode=BranchMode.ENLARGED, window_blocks=4,
        )]
    interval_s = (
        args.interval if args.interval is not None else DEFAULT_INTERVAL_S
    )

    collector = MetricsCollector()
    runner = SweepRunner(benchmarks=benchmarks, scale=args.scale,
                         use_cache=False, collector=collector)
    # Warm the prepared-workload cache outside the profile window so the
    # stacks show simulation, not one-time compilation and tracing.
    for name in benchmarks:
        runner.workload(name)

    def run_grid(target: SweepRunner) -> None:
        for config in configs:
            for name in benchmarks:
                target.run_point(name, config)

    points = len(configs) * len(benchmarks)
    print(f"profile: {points} point(s) on {','.join(benchmarks)}"
          f" ({'smoke grid' if args.smoke else 'representative point'},"
          f" scale {runner.scale})", file=sys.stderr)
    sampler = SamplingProfiler(interval_s=interval_s)
    start = time.perf_counter()
    with sampler:
        _, hot_functions = profile_call(
            lambda: run_grid(runner), top_n=args.top
        )
    wall_s = time.perf_counter() - start

    phases = span_totals(collector.spans)
    attribution = attribution_breakdown(collector.counters)

    overhead = None
    if args.overhead_repeats > 0:
        plain = SweepRunner(benchmarks=benchmarks, scale=runner.scale,
                            use_cache=False)
        disabled_s = measure_overhead(lambda: run_grid(plain),
                                      repeats=args.overhead_repeats)
        instrumented = SweepRunner(benchmarks=benchmarks,
                                   scale=runner.scale, use_cache=False,
                                   collector=MetricsCollector())
        enabled_s = measure_overhead(lambda: run_grid(instrumented),
                                     repeats=args.overhead_repeats)
        overhead = {
            "disabled_s": round(disabled_s, 4),
            "enabled_s": round(enabled_s, 4),
            "telemetry_overhead_pct": round(
                100.0 * (enabled_s - disabled_s) / disabled_s, 2
            ) if disabled_s else 0.0,
        }
        print(f"  overhead    : disabled {disabled_s:.3f}s, enabled"
              f" {enabled_s:.3f}s"
              f" ({overhead['telemetry_overhead_pct']:+.2f}%)",
              file=sys.stderr)

    document = {
        "schema": "repro.bench.profile/1",
        "host": host_block(),
        "grid": {
            "benchmarks": benchmarks,
            "mode": "smoke" if args.smoke else "point",
            "configs": len(configs),
            "points": points,
            "scale": runner.scale,
        },
        "wall_s": round(wall_s, 3),
        "sampling": {
            "interval_s": interval_s,
            "samples": sampler.samples,
        },
        "hot_functions": hot_functions,
        "hot_frames": sampler.hot_frames(args.top),
        "phases": phases,
        "attribution": attribution,
        "overhead": overhead,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    stacks = sampler.collapsed()
    with open(args.stacks_out, "w", encoding="utf-8") as handle:
        handle.write("\n".join(stacks) + ("\n" if stacks else ""))

    for row in hot_functions[:5]:
        print(f"  {row['tottime_s']:8.3f}s  {row['calls']:>9} calls "
              f" {row['function']} ({row['file']}:{row['line']})",
              file=sys.stderr)
    print(f"profiled {points} point(s) in {wall_s:.2f}s"
          f" ({sampler.samples} samples); wrote {args.output}"
          f" and {args.stacks_out} ({len(stacks)} stacks)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service daemon until interrupted.

    One scheduler thread owns the runner (cache + collector + backend);
    the HTTP server fans requests onto its thread-safe surface.  The
    ready line on stdout is machine-parsable ("listening on URL") so
    wrappers and CI can wait for it.
    """
    from .harness.executor import ExecutionPolicy
    from .service import JobScheduler, make_server
    from .telemetry import MetricsCollector

    if args.jobs < 1:
        print("fatal: --jobs must be >= 1", file=sys.stderr)
        return 1
    collector = MetricsCollector()
    runner = SweepRunner(scale=args.scale, collector=collector,
                         max_cycles=args.max_cycles)
    policy = ExecutionPolicy(timeout_s=args.timeout, retries=args.retries,
                             max_cycles=args.max_cycles)
    scheduler = JobScheduler(
        runner, policy=policy, jobs=args.jobs,
        max_queued_jobs=args.max_queued,
        max_job_points=args.max_job_points,
        validate=args.validate,
    )
    try:
        server = make_server(scheduler, host=args.host, port=args.port,
                             quiet=args.quiet)
    except OSError as exc:
        print(f"fatal: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    scheduler.start()
    print(f"repro service listening on http://{host}:{port}"
          f" (scale {runner.scale}, backend {scheduler.backend.name},"
          f" max {args.max_queued} queued job(s))", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        scheduler.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one grid job; with ``--wait``, stream progress to stderr."""
    from .service import AdmissionRejected, JobFailed, ServiceClient
    from .service import ServiceError

    client = ServiceClient(args.url, retries=args.retries,
                           backoff_s=args.backoff)
    spec = {"grid": args.grid}
    benchmarks = _benchmarks_from_args(args)
    if benchmarks is not None:
        spec["benchmarks"] = benchmarks
    if args.scale is not None:
        spec["scale"] = args.scale
    if args.limit is not None:
        spec["limit"] = args.limit
    try:
        if args.connect_retries:
            client.wait_ready(attempts=args.connect_retries)
        job = client.submit(spec)
    except AdmissionRejected as exc:
        print(f"rejected ({exc.reason}): {exc}", file=sys.stderr)
        return 5
    except ServiceError as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    job_id = job["job_id"]
    print(f"accepted {job_id}: {job['points']['total']} point(s),"
          f" state {job['state']}")
    if not args.wait:
        return 0

    def show(event: dict) -> None:
        kind = event.get("kind", "")
        if kind == "point":
            print(f"  [{event['resolved']}/{event['total']}]"
                  f" {event['status']:6s} {event['benchmark']}"
                  f" {event['config']}", file=sys.stderr)
        elif kind.startswith("job."):
            print(f"  {kind}", file=sys.stderr)

    try:
        final = client.wait(job_id, on_event=show)
    except JobFailed as exc:
        points = exc.job.get("points", {})
        print(f"job {job_id} {exc.job.get('state')}:"
              f" {points.get('failed', '?')} failed point(s)"
              f" ({exc.job.get('error')})", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"fatal: {exc}", file=sys.stderr)
        return 1
    points = final["points"]
    wall = (final["finished_s"] - final["started_s"]
            if final.get("finished_s") and final.get("started_s") else 0.0)
    print(f"job {job_id} done: {points['total']} point(s)"
          f" ({points['cached']} cached, {points['fresh']} simulated,"
          f" {points['deduped']} deduped) in {wall:.2f}s")
    validation = final.get("validation")
    if validation is not None:
        severities = validation.get("severities", {})
        print(f"validation: {validation.get('checked_results', 0)} result(s)"
              f" checked, {severities.get('error', 0)} error(s),"
              f" {severities.get('warning', 0)} warning(s)")
        if severities.get("error"):
            return 4
    if args.expect_all_cached and points["cached"] != points["total"]:
        print(f"expected all {points['total']} point(s) cached, but"
              f" {points['fresh']} were re-simulated and"
              f" {points['failed']} failed", file=sys.stderr)
        return 3
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection drill: two arms, then the convergence contract.

    Exit codes: 0 when the faulted arm converged with the fault-free
    one (and, under ``--smoke``, the plan's coverage floor held), 3 on
    divergence or missed coverage (problems on stderr), 1 on a fatal
    harness error or an unloadable plan.
    """
    import json

    from .chaos.plan import FaultPlan, PlanError, smoke_plan
    from .telemetry import MetricsCollector

    if args.plan is not None and args.smoke:
        print("fatal: --plan and --smoke are mutually exclusive",
              file=sys.stderr)
        return 1
    if args.plan is not None:
        try:
            with open(args.plan, "r", encoding="utf-8") as handle:
                plan = FaultPlan.from_json(handle.read())
        except (OSError, ValueError, PlanError) as exc:
            print(f"fatal: cannot load fault plan {args.plan}: {exc}",
                  file=sys.stderr)
            return 1
    else:
        plan = smoke_plan(args.seed, args.mode)
    if args.plan_out:
        # Written before the run so a wedged or killed drill still
        # leaves the plan behind for reproduction.
        with open(args.plan_out, "w", encoding="utf-8") as handle:
            handle.write(plan.to_json())
        print(f"wrote {args.plan_out}")

    benchmarks = _benchmarks_from_args(args) or ["grep"]
    telemetry = args.telemetry or bool(args.metrics_out)
    collector = MetricsCollector() if telemetry else None

    from .chaos.harness import run_chaos
    from .telemetry.collector import NULL_COLLECTOR

    try:
        report = run_chaos(
            args.mode, plan, benchmarks=tuple(benchmarks),
            scale=args.scale if args.scale is not None else 1,
            limit=args.limit,
            collector=collector if collector is not None else NULL_COLLECTOR,
        )
    except Exception as exc:  # noqa: BLE001 - deterministic exit code 1
        print(f"fatal: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1

    print(json.dumps(report.to_dict(), indent=2))
    if args.metrics_out:
        _write_metrics(collector, args.metrics_out,
                       context={"mode": args.mode, "plan": plan.name,
                                "seed": plan.seed})

    problems = list(report.problems)
    if args.smoke:
        # The smoke drill's value is breadth: a plan edit that silently
        # drops coverage must fail CI, not shrink the drill.
        if len(report.sites) < 8:
            problems.append(
                f"smoke coverage: only {len(report.sites)} fault sites"
                " injected (need >= 8)"
            )
        if len(report.kinds) < 6:
            problems.append(
                f"smoke coverage: only {len(report.kinds)} fault kinds"
                " injected (need >= 6)"
            )
    if problems:
        for problem in problems:
            print(f"chaos: {problem}", file=sys.stderr)
        return 3
    print(f"chaos: converged ({sum(report.injected.values())} faults"
          f" injected across {len(report.sites)} sites,"
          f" {sum(report.recovered.values())} recoveries)")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("benchmarks:", ", ".join(sorted(WORKLOADS)))
    print("issue models:")
    for index, model in ISSUE_MODELS.items():
        print(f"  {index}: {model}")
    print("memory configs:")
    for letter, memory in MEMORY_CONFIGS.items():
        print(f"  {letter}: {memory}")
    print(f"window sizes: {WINDOW_SIZES}")
    print("branch modes:", ", ".join(mode.value for mode in BranchMode))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.log_json:
        from .telemetry.logging import configure

        configure(True)
    handlers = {
        "run": _cmd_run,
        "trace": _cmd_trace,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "dump": _cmd_dump,
        "schedule": _cmd_schedule,
        "compile": _cmd_compile,
        "sweep": _cmd_sweep,
        "validate": _cmd_validate,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "chaos": _cmd_chaos,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
