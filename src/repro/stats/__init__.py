"""Statistics containers and aggregation helpers."""

from .aggregate import (
    format_summary,
    geometric_mean_ipc,
    group_by,
    mean_redundancy,
    speedup_matrix,
    summarize,
)
from .results import SimResult

__all__ = [
    "SimResult",
    "format_summary",
    "geometric_mean_ipc",
    "group_by",
    "mean_redundancy",
    "speedup_matrix",
    "summarize",
]
