"""Statistics containers and aggregation helpers."""

from .aggregate import (
    EMPTY_SUMMARY,
    TELEMETRY_SCHEMA,
    format_summary,
    geometric_mean_ipc,
    group_by,
    histogram_stats,
    mean_redundancy,
    schedule_summary,
    speedup_matrix,
    summarize,
    telemetry_report,
)
from .results import SimResult

__all__ = [
    "EMPTY_SUMMARY",
    "SimResult",
    "TELEMETRY_SCHEMA",
    "format_summary",
    "geometric_mean_ipc",
    "group_by",
    "histogram_stats",
    "mean_redundancy",
    "schedule_summary",
    "speedup_matrix",
    "summarize",
    "telemetry_report",
]
