"""Aggregation helpers over collections of simulation results.

The figure harnesses need only means, but downstream analysis (and the
ablation benches) want speedup matrices and per-benchmark summaries;
these helpers keep that logic out of the harness plumbing.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..telemetry.collector import Collector
from .results import SimResult

#: Version tag of the ``telemetry.json`` document layout.
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Counter-name prefix under which the engines publish cycle
#: attribution (``cycles.<engine>.<bucket>``; see
#: ``repro.telemetry.collector.ATTRIBUTION_BUCKETS``).
_ATTRIBUTION_PREFIX = "cycles."


def group_by(results: Iterable[SimResult],
             key: Callable[[SimResult], str]) -> Dict[str, List[SimResult]]:
    """Bucket results by an arbitrary key function."""
    buckets: Dict[str, List[SimResult]] = {}
    for result in results:
        buckets.setdefault(key(result), []).append(result)
    return buckets


def geometric_mean_ipc(results: Sequence[SimResult]) -> float:
    """Geometric mean of retired-nodes-per-cycle over results."""
    if not results:
        return 0.0
    total = sum(math.log(max(r.retired_per_cycle, 1e-12)) for r in results)
    return math.exp(total / len(results))


def mean_redundancy(results: Sequence[SimResult]) -> float:
    """Arithmetic mean redundancy over results."""
    if not results:
        return 0.0
    return sum(r.redundancy for r in results) / len(results)


def speedup_matrix(results: Iterable[SimResult],
                   baseline_key: str) -> Dict[str, Dict[str, float]]:
    """Per-benchmark speedups of every discipline over a baseline.

    Args:
        results: results spanning benchmarks and discipline lines (one
            result per (benchmark, discipline) pair).
        baseline_key: the ``discipline_key()`` used as the denominator.

    Returns:
        benchmark -> {discipline_key -> speedup}.  Raises ``KeyError``
        when a benchmark lacks the baseline.
    """
    by_benchmark = group_by(results, lambda r: r.benchmark)
    matrix: Dict[str, Dict[str, float]] = {}
    for benchmark, bucket in by_benchmark.items():
        baseline: Optional[SimResult] = None
        for result in bucket:
            if result.config.discipline_key() == baseline_key:
                baseline = result
                break
        if baseline is None:
            raise KeyError(
                f"benchmark {benchmark!r} has no {baseline_key!r} baseline"
            )
        row = {}
        for result in bucket:
            row[result.config.discipline_key()] = (
                baseline.cycles / result.cycles if result.cycles else 0.0
            )
        matrix[benchmark] = row
    return matrix


#: What :func:`summarize` reports for an empty batch: every key
#: present, ratios at their no-information identity (a consumer indexing
#: ``summary["geomean_ipc"]`` must never KeyError on an empty grid, and
#: nothing here is a NaN).
EMPTY_SUMMARY: Dict[str, float] = {
    "results": 0.0,
    "geomean_ipc": 0.0,
    "mean_redundancy": 0.0,
    "aggregate_ipc": 0.0,
    "branch_accuracy": 1.0,
    "value_accuracy": 1.0,
    "cache_hit_rate": 1.0,
    "discard_fraction": 0.0,
}


def summarize(results: Sequence[SimResult]) -> Dict[str, float]:
    """Aggregate statistics over a batch of results.

    An empty batch returns :data:`EMPTY_SUMMARY` (same keys, defined
    values) rather than an empty dict, so downstream indexing is safe
    on fully-failed or filtered-out grids.
    """
    if not results:
        return dict(EMPTY_SUMMARY)
    total_cycles = sum(r.cycles for r in results)
    total_retired = sum(r.retired_nodes for r in results)
    total_executed = sum(r.executed_nodes for r in results)
    total_lookups = sum(r.branch_lookups for r in results)
    total_mispredicts = sum(r.mispredicts for r in results)
    total_cache = sum(r.cache_accesses for r in results)
    total_misses = sum(r.cache_misses for r in results)
    total_value = sum(r.value_predictions for r in results)
    total_confirmed = sum(r.value_confirmed for r in results)
    return {
        "results": float(len(results)),
        "geomean_ipc": geometric_mean_ipc(results),
        "mean_redundancy": mean_redundancy(results),
        "aggregate_ipc": total_retired / total_cycles if total_cycles else 0.0,
        "branch_accuracy": (
            1.0 - total_mispredicts / total_lookups if total_lookups else 1.0
        ),
        "value_accuracy": (
            total_confirmed / total_value if total_value else 1.0
        ),
        "cache_hit_rate": (
            1.0 - total_misses / total_cache if total_cache else 1.0
        ),
        "discard_fraction": (
            (total_executed - total_retired) / total_executed
            if total_executed else 0.0
        ),
    }


def histogram_stats(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of one recorded distribution."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    n = len(ordered)
    return {
        "count": n,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
        "p50": ordered[n // 2],
        "p90": ordered[min(int(n * 0.9), n - 1)],
    }


def attribution_breakdown(counters: Dict[str, int],
                          ) -> Dict[str, Dict[str, Any]]:
    """Cycle attribution per engine from ``cycles.*`` counters.

    Returns ``{engine: {buckets: {bucket: cycles}, total_cycles,
    shares: {bucket: fraction}}}`` -- empty when no engine published
    attribution (collector disabled, or only cache hits served).
    """
    engines: Dict[str, Dict[str, int]] = {}
    for name, value in counters.items():
        if not name.startswith(_ATTRIBUTION_PREFIX):
            continue
        _, engine, bucket = name.split(".", 2)
        engines.setdefault(engine, {})[bucket] = value
    breakdown: Dict[str, Dict[str, Any]] = {}
    for engine, buckets in sorted(engines.items()):
        total = sum(buckets.values())
        breakdown[engine] = {
            "buckets": dict(sorted(buckets.items())),
            "total_cycles": total,
            "shares": {
                bucket: round(value / total, 4) if total else 0.0
                for bucket, value in sorted(buckets.items())
            },
        }
    return breakdown


def accuracy_summary(counters: Dict[str, int]) -> Dict[str, float]:
    """Prediction-accuracy ratios derived from the engines' counters.

    ``branch.accuracy`` is correct lookups over ``branch.lookups``;
    ``value.accuracy`` is ``value.confirmed`` over delivered
    ``value.predictions``.  Each key is present only when its
    denominator counter was published, so a grid without value
    speculation reports no ``value.accuracy`` rather than a fake 1.0.
    """
    accuracy: Dict[str, float] = {}
    lookups = counters.get("branch.lookups", 0)
    if lookups:
        accuracy["branch.accuracy"] = round(
            1.0 - counters.get("branch.mispredicts", 0) / lookups, 6
        )
    predictions = counters.get("value.predictions", 0)
    if predictions:
        accuracy["value.accuracy"] = round(
            counters.get("value.confirmed", 0) / predictions, 6
        )
    return accuracy


def schedule_summary(counters: Dict[str, int]) -> Dict[str, Any]:
    """Static schedule-quality facts from the ``sched.*`` counters.

    Published by :func:`repro.optsched.optimal_schedule_program` on
    runs with ``optimal_schedule=True``; empty when no block was solved
    exactly (list-only grids keep their telemetry byte-identical).
    ``gap_percent`` is the list-vs-optimal makespan reduction over every
    solved block; ``closed_fraction`` is how many blocks carry the
    ``makespan == lower_bound`` certificate.
    """
    blocks = counters.get("sched.blocks", 0)
    if not blocks:
        return {}
    list_words = counters.get("sched.list_words", 0)
    optimal_words = counters.get("sched.optimal_words", 0)
    summary: Dict[str, Any] = {
        "blocks": blocks,
        "closed": counters.get("sched.closed", 0),
        "fallback": counters.get("sched.fallback", 0),
        "memo_hits": counters.get("sched.memo_hits", 0),
        "list_words": list_words,
        "optimal_words": optimal_words,
        "lower_bound_words": counters.get("sched.lower_bound_words", 0),
        "closed_fraction": round(
            counters.get("sched.closed", 0) / blocks, 6
        ),
    }
    if list_words:
        summary["gap_percent"] = round(
            100.0 * (list_words - optimal_words) / list_words, 4
        )
    return summary


def span_totals(spans: Sequence[Dict[str, Any]],
                ) -> Dict[str, Dict[str, Any]]:
    """Fold raw span records into ``{name: {total_s, count}}``."""
    totals: Dict[str, List[float]] = {}
    for span in spans:
        entry = totals.setdefault(span["name"], [0.0, 0])
        entry[0] += span["dur_s"]
        entry[1] += 1
    return {
        name: {"total_s": round(entry[0], 6), "count": int(entry[1])}
        for name, entry in sorted(totals.items())
    }


def telemetry_report(collector: Collector,
                     context: Optional[Dict[str, Any]] = None,
                     validation: Optional[Dict[str, Any]] = None,
                     ) -> Dict[str, Any]:
    """The machine-readable ``telemetry.json`` document for one sweep.

    Schema (``TELEMETRY_SCHEMA``): ``counters`` maps dotted counter
    names to totals (e.g. ``sweep.cache.hit``); ``timers`` maps timer
    names to ``{total_s, count}``; ``histograms`` maps distribution
    names to :func:`histogram_stats` summaries (e.g.
    ``sweep.point.wall_s``); ``points`` lists one record per simulated
    point with its per-point timings.  Points that failed under
    fault-tolerant execution carry ``failed: true`` and an ``error``
    kind, and are additionally surfaced in the ``failures`` list so a
    partial grid is visible at the top level.  ``phases`` folds the
    named phase spans (``phase.prepare`` / ``phase.simulate`` /
    ``phase.validate`` / ``phase.merge``) into per-phase totals;
    ``attribution`` is the per-engine cycle-attribution breakdown of
    :func:`attribution_breakdown` (empty unless fresh simulations ran
    with the collector enabled); ``accuracy`` is
    :func:`accuracy_summary` over the same counters
    (``branch.accuracy`` / ``value.accuracy``); ``schedule`` is
    :func:`schedule_summary` over the exact-scheduler's ``sched.*``
    counters (empty unless ``optimal_schedule`` points ran).
    ``context`` (when given)
    records run-level facts such as the execution backend and worker
    count; a parallel sweep's document is the parent-side merge of every
    worker's collector snapshot, so the schema is identical across
    backends.  ``validation`` (when given) is a
    :meth:`repro.validate.ValidationReport.to_dict` document: the
    oracle's typed findings ride in the same file as the failure list.
    """
    points = list(collector.points)
    document: Dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "counters": dict(sorted(collector.counters.items())),
        "timers": {
            name: {"total_s": total, "count": count}
            for name, (total, count) in sorted(collector.timers.items())
        },
        "histograms": {
            name: histogram_stats(values)
            for name, values in sorted(collector.histograms.items())
        },
        "points": points,
        "failures": [point for point in points if point.get("failed")],
        "phases": span_totals(collector.spans),
        "attribution": attribution_breakdown(collector.counters),
        "accuracy": accuracy_summary(collector.counters),
        "schedule": schedule_summary(collector.counters),
    }
    if context:
        document["context"] = dict(context)
    if validation is not None:
        document["validation"] = validation
    return document


def format_summary(summary: Dict[str, float]) -> str:
    """One aligned line per statistic."""
    return "\n".join(
        f"{name:18s} {value:10.4f}" for name, value in summary.items()
    )
