"""Simulation results: the statistics the paper's figures are built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..machine.config import MachineConfig


@dataclass
class SimResult:
    """Statistics from one timing simulation.

    The paper's figure-of-merit is ``retired_per_cycle``: total retired
    nodes divided by total machine cycles ("retired" excludes nodes thrown
    away by branch prediction misses and enlarged-block faults); its
    Figure 6 plots ``redundancy``: the fraction of executed nodes that
    were discarded.
    """

    benchmark: str
    config: MachineConfig
    cycles: int
    retired_nodes: int
    discarded_nodes: int
    dynamic_blocks: int
    mispredicts: int = 0
    branch_lookups: int = 0
    faults: int = 0
    loads: int = 0
    stores: int = 0
    cache_accesses: int = 0
    cache_misses: int = 0
    write_buffer_hits: int = 0
    #: issue words opened on the fetched (non-wrong-path) instruction
    #: stream, and the datapath nodes issued into their slots.  These
    #: feed ``issue_utilization``: how full the machine's issue bandwidth
    #: actually ran.
    issue_words: int = 0
    issued_slots: int = 0
    #: window occupancy, sampled once per block at block entry (dynamic
    #: engine only): the sum of active-block counts and the sample count.
    window_block_cycles: int = 0
    window_samples: int = 0
    #: architectural work: the single-block program's retired node count
    #: for this benchmark and input (constant across configurations, as
    #: the paper notes).  Zero when not supplied.
    work_nodes: int = 0
    #: value speculation (dynamic machines with a value predictor; all
    #: zero otherwise): confident predictions delivered, how many the
    #: verify step confirmed vs squashed, and dependent executions the
    #: squashes wasted and replayed.
    value_predictions: int = 0
    value_confirmed: int = 0
    value_squashed: int = 0
    value_replays: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def executed_nodes(self) -> int:
        """All nodes that reached a function unit."""
        return self.retired_nodes + self.discarded_nodes

    @property
    def retired_per_cycle(self) -> float:
        """The paper's primary metric: architectural work per cycle.

        The paper observes that "the number of nodes retired is the same
        for a given benchmark on a given set of input data" across all its
        configurations, so its metric measures constant work.  Enlarged
        programs retire a *different* node stream (re-optimisation removes
        nodes, fault recovery re-executes others), so we normalise by the
        single-block program's retired count; raw counts stay available as
        ``retired_nodes``.
        """
        if self.cycles == 0:
            return 0.0
        work = self.work_nodes if self.work_nodes else self.retired_nodes
        return work / self.cycles

    @property
    def redundancy(self) -> float:
        """Fraction of executed nodes that were discarded (Figure 6)."""
        executed = self.executed_nodes
        if executed == 0:
            return 0.0
        return self.discarded_nodes / executed

    @property
    def branch_accuracy(self) -> float:
        """Realised conditional-branch prediction accuracy."""
        if self.branch_lookups == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.branch_lookups

    @property
    def value_accuracy(self) -> float:
        """Fraction of delivered value predictions that were confirmed."""
        if self.value_predictions == 0:
            return 1.0
        return self.value_confirmed / self.value_predictions

    @property
    def issue_utilization(self) -> float:
        """Fraction of issue slots that carried a datapath node.

        The denominator is the issue bandwidth actually opened
        (``issue_words`` x the configuration's slots per word); low
        values diagnose issue-slot starvation from small basic blocks,
        the problem basic block enlargement exists to solve.  Zero when
        slot counters were not collected (e.g. results cached before
        they existed).
        """
        if self.issue_words == 0:
            return 0.0
        width = self.config.issue.total_slots
        return self.issued_slots / (self.issue_words * width)

    @property
    def avg_window_blocks(self) -> float:
        """Mean active basic blocks in the window, sampled at block entry.

        Zero for static machines (no window) and for results cached
        before window sampling existed.
        """
        if self.window_samples == 0:
            return 0.0
        return self.window_block_cycles / self.window_samples

    @property
    def cache_hit_rate(self) -> float:
        if self.cache_accesses == 0:
            return 1.0
        return 1.0 - self.cache_misses / self.cache_accesses

    def summary(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.benchmark:10s} {str(self.config):34s} "
            f"IPC={self.retired_per_cycle:6.3f} "
            f"cycles={self.cycles:>10d} "
            f"redundancy={self.redundancy:6.3f} "
            f"bracc={self.branch_accuracy:5.3f}"
        )
        if self.config.value_predictor != "none":
            line += f" vacc={self.value_accuracy:5.3f}"
        return line
