"""Basic block enlargement: plan, build, verify."""

from .builder import EnlargementError, apply_plan, enlarge_program
from .fill_unit import FillUnitConfig, fill_unit_enlarge, plan_from_trace
from .plan import EnlargeConfig, EnlargementPlan, plan_enlargement

__all__ = [
    "EnlargeConfig",
    "FillUnitConfig",
    "fill_unit_enlarge",
    "plan_from_trace",
    "EnlargementError",
    "EnlargementPlan",
    "apply_plan",
    "enlarge_program",
    "plan_enlargement",
]
