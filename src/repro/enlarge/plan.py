"""Enlargement planning: choosing which blocks to combine.

Implements the paper's procedure: branch arcs from the profiling run are
sorted by use; starting from the most heavily used blocks, traces of
blocks are grown along the dominant arc until either the arc weight or the
taken/not-taken ratio falls below a threshold.  Loops are unrolled by
letting a trace revisit its own members, and at most ``max_instances``
copies of any original block are created across all enlarged blocks
(the paper's limit is 16 instances per original PC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.ops import NodeKind
from ..profiles.profile import BranchProfile
from ..program.program import Program


@dataclass(frozen=True)
class EnlargeConfig:
    """Thresholds controlling trace growth.

    Attributes:
        min_arc_weight: stop when the dominant outgoing arc was traversed
            fewer times than this in the profiling run.
        min_arc_ratio: stop when the dominant arc carries less than this
            fraction of the block's outgoing traversals.
        max_blocks: maximum original blocks combined into one enlarged
            block (bounds recursion depth / unroll factor).
        max_nodes: maximum datapath nodes in an enlarged block.
        max_instances: maximum copies of one original block across all
            enlarged blocks (the paper uses 16).
        min_seed_count: do not seed a trace at a block executed fewer
            times than this.
        min_cum_ratio: stop when the *product* of arc ratios along the
            trace falls below this -- the probability that the whole
            enlarged block retires.  The paper notes that enlargement
            efficiency "falls off" as blocks grow because every embedded
            fault node has a signalling probability; this cut is the
            "more complex test to determine where enlarged basic blocks
            should be broken" it suggests.
    """

    min_arc_weight: int = 8
    min_arc_ratio: float = 0.75
    max_blocks: int = 16
    max_nodes: int = 128
    max_instances: int = 16
    min_seed_count: int = 16
    min_cum_ratio: float = 0.45


@dataclass
class EnlargementPlan:
    """The sequences of original labels to merge, plus the entry map."""

    #: each entry is the ordered labels of one enlarged block
    sequences: List[List[str]] = field(default_factory=list)
    #: original entry label -> enlarged block label (canonical instance)
    entry_map: Dict[str, str] = field(default_factory=dict)

    def instance_counts(self) -> Dict[str, int]:
        """How many copies of each original label the plan creates."""
        counts: Dict[str, int] = {}
        for sequence in self.sequences:
            for label in sequence:
                counts[label] = counts.get(label, 0) + 1
        return counts


def _dominant_successor(
    program: Program,
    profile: BranchProfile,
    label: str,
) -> Optional[Tuple[str, int, float]]:
    """The dominant control arc out of ``label``.

    Returns ``(successor, weight, ratio)`` or None when the block cannot
    be merged across (calls, returns, syscalls, or unexecuted branches).
    """
    block = program.block(label)
    term = block.terminator
    if term.kind is NodeKind.JUMP:
        weight = profile.arc_counts.get((label, term.target), 0)
        return (term.target, weight, 1.0)
    if term.kind is not NodeKind.BRANCH:
        return None
    taken_weight = profile.arc_counts.get((label, term.target), 0)
    fall_weight = profile.arc_counts.get((label, term.alt_target), 0)
    total = taken_weight + fall_weight
    if total == 0:
        return None
    if taken_weight >= fall_weight:
        return (term.target, taken_weight, taken_weight / total)
    return (term.alt_target, fall_weight, fall_weight / total)


def plan_enlargement(
    program: Program,
    profile: BranchProfile,
    config: EnlargeConfig = EnlargeConfig(),
) -> EnlargementPlan:
    """Grow enlargement traces for ``program`` from profile data."""
    plan = EnlargementPlan()
    instances: Dict[str, int] = {}

    def instances_of(label: str) -> int:
        return instances.get(label, 0)

    # Seeds in descending execution count, the paper's "most heavily used
    # first" order.
    seeds = sorted(
        profile.block_counts.items(), key=lambda item: -item[1]
    )

    for seed, count in seeds:
        if count < config.min_seed_count:
            break
        if seed in plan.entry_map:
            continue  # already the entry of an enlarged block
        if seed not in program:
            continue
        if instances_of(seed) >= config.max_instances:
            continue

        sequence = [seed]
        # Claim the seed's instance up front so growth that revisits the
        # seed (loop unrolling) counts it against the cap correctly.
        instances[seed] = instances_of(seed) + 1
        node_total = program.block(seed).datapath_size
        current = seed
        cum_ratio = 1.0
        while len(sequence) < config.max_blocks:
            step = _dominant_successor(program, profile, current)
            if step is None:
                break
            successor, weight, ratio = step
            if weight < config.min_arc_weight or ratio < config.min_arc_ratio:
                break
            if cum_ratio * ratio < config.min_cum_ratio:
                break
            if successor not in program:
                break
            if instances_of(successor) >= config.max_instances:
                break
            successor_block = program.block(successor)
            if node_total + successor_block.datapath_size > config.max_nodes:
                break
            sequence.append(successor)
            instances[successor] = instances_of(successor) + 1
            node_total += successor_block.datapath_size
            cum_ratio *= ratio
            current = successor

        if len(sequence) < 2:
            instances[seed] = instances_of(seed) - 1  # release the claim
            continue
        enlarged_label = f"E${seed}${len(plan.sequences)}"
        plan.sequences.append(sequence)
        plan.entry_map[seed] = enlarged_label
    return plan
