"""A hardware fill unit: run-time basic block enlargement.

The paper builds enlarged blocks offline from profile data, but notes the
alternative of "possibly a hardware unit" creating larger blocks, and its
[MeSP88] reference ("Hardware Support for Large Atomic Units in
Dynamically Scheduled Machines") describes exactly that: a *fill unit*
that snoops the retiring instruction stream and assembles hot block
sequences into large atomic units at run time.

This module models that mechanism at trace level: the dynamic block
stream is segmented greedily into candidate units (a segment ends at a
call/return/syscall boundary or at the capacity limits, just like a fill
buffer), hot segments are counted in a bounded table (the unit's cache),
and the hottest become an :class:`~repro.enlarge.plan.EnlargementPlan`
that the ordinary builder materialises.  The resulting program is what
the hardware's block cache would contain after warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..interp.trace import Trace
from ..isa.ops import NodeKind
from ..program.program import Program
from .builder import apply_plan
from .plan import EnlargementPlan


@dataclass(frozen=True)
class FillUnitConfig:
    """Capacity and hotness parameters of the modelled fill unit.

    Attributes:
        max_blocks: fill-buffer capacity in basic blocks.
        max_nodes: fill-buffer capacity in datapath nodes.
        min_occurrences: a segment must recur this often to be kept
            (the block cache only holds units that earn their space).
        table_size: number of distinct segments the unit can track while
            observing the stream (bounded, like real hardware).
        max_instances: cap on copies of one original block across all
            units, mirroring the offline planner's limit.
    """

    max_blocks: int = 8
    max_nodes: int = 96
    min_occurrences: int = 8
    table_size: int = 4096
    max_instances: int = 16


def _segment_stream(program: Program, trace: Trace,
                    config: FillUnitConfig) -> Dict[Tuple[str, ...], int]:
    """Greedily segment the dynamic stream; count segment occurrences.

    A segment grows while the current block ends in a two-way branch or
    jump (merging across calls/returns/syscalls is not possible for an
    atomic unit) and the capacity limits allow; the table is bounded, and
    once full only already-tracked segments are counted.
    """
    sizes = {}
    extendable = {}
    for label in trace.labels:
        block = program.blocks.get(label)
        if block is None:  # label from a different program variant
            sizes[label] = 0
            extendable[label] = False
            continue
        sizes[label] = block.datapath_size
        extendable[label] = block.terminator.kind in (
            NodeKind.BRANCH, NodeKind.JUMP
        )

    counts: Dict[Tuple[str, ...], int] = {}
    labels = trace.labels
    block_ids = trace.block_ids
    position = 0
    length = len(block_ids)
    while position < length:
        segment: List[str] = []
        node_total = 0
        while position < length and len(segment) < config.max_blocks:
            label = labels[block_ids[position]]
            if node_total + sizes[label] > config.max_nodes and segment:
                break
            segment.append(label)
            node_total += sizes[label]
            position += 1
            if not extendable[label]:
                break
        key = tuple(segment)
        if len(key) >= 2:
            if key in counts:
                counts[key] += 1
            elif len(counts) < config.table_size:
                counts[key] = 1
    return counts


def plan_from_trace(program: Program, trace: Trace,
                    config: FillUnitConfig = FillUnitConfig(),
                    ) -> EnlargementPlan:
    """Build an enlargement plan from observed execution, not a profile."""
    counts = _segment_stream(program, trace, config)
    plan = EnlargementPlan()
    instances: Dict[str, int] = {}

    # Hottest segments first, weighted by the work they capture.
    candidates = sorted(
        counts.items(), key=lambda item: -item[1] * len(item[0])
    )
    for segment, count in candidates:
        if count < config.min_occurrences:
            continue
        seed = segment[0]
        if seed in plan.entry_map:
            continue
        # Count per-segment repeats (unrolled loops) against the cap too.
        within: Dict[str, int] = {}
        for label in segment:
            within[label] = within.get(label, 0) + 1
        if any(
            instances.get(label, 0) + repeat > config.max_instances
            for label, repeat in within.items()
        ):
            continue
        label = f"F${seed}${len(plan.sequences)}"
        plan.sequences.append(list(segment))
        plan.entry_map[seed] = label
        for member in segment:
            instances[member] = instances.get(member, 0) + 1
    return plan


def fill_unit_enlarge(program: Program, trace: Trace,
                      config: FillUnitConfig = FillUnitConfig()) -> Program:
    """One-call run-time enlargement: observe ``trace``, build the program."""
    plan = plan_from_trace(program, trace, config)
    return apply_plan(program, plan)
