"""Enlarged-program construction.

Given an :class:`~repro.enlarge.plan.EnlargementPlan`, build the enlarged
program:

* each planned sequence becomes one enlarged block: bodies concatenated,
  interior conditional branches converted to **assert** nodes and interior
  jumps dropped;
* every assert's fault target is the *original* label of the sequence's
  first block -- a signalling assert discards the whole enlarged block
  (hardware rolls back to block entry), so recovery re-executes the
  original single-block path, which then takes the correct directions
  (the paper's Figure 1: AB faults to a block that re-executes A);
* all other control transfers (branches, jumps, call targets and links)
  are redirected to the canonical enlarged instance of their target label,
  matching the paper's "branches to enlarged basic blocks always execute
  the initial enlarged basic block first";
* the merged blocks are re-optimised as a unit, which is where the
  "artificial flow dependencies" between adjacent blocks disappear.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa import node as nd
from ..isa.node import Node
from ..isa.ops import NodeKind
from ..opt.liveness import compute_liveness
from ..opt.localopt import optimize_block
from ..opt.simplify_cfg import remove_unreachable
from ..program.block import BasicBlock
from ..program.program import Program
from .plan import EnlargementPlan


class EnlargementError(Exception):
    """A plan that cannot be applied to the given program."""


def _build_enlarged_block(program: Program, sequence: List[str],
                          label: str) -> BasicBlock:
    """Concatenate a sequence of blocks into one enlarged block."""
    fault_target = sequence[0]
    body: List[Node] = []
    for position, member in enumerate(sequence):
        block = program.block(member)
        is_last = position == len(sequence) - 1
        body.extend(block.body)
        if is_last:
            return BasicBlock(label, body, block.terminator, tuple(sequence))
        term = block.terminator
        next_label = sequence[position + 1]
        if term.kind is NodeKind.JUMP:
            if term.target != next_label:
                raise EnlargementError(
                    f"sequence {sequence} does not follow jump in {member!r}"
                )
            continue
        if term.kind is not NodeKind.BRANCH:
            raise EnlargementError(
                f"cannot merge across {term.kind} terminator in {member!r}"
            )
        if next_label == term.target:
            expected = True
        elif next_label == term.alt_target:
            expected = False
        else:
            raise EnlargementError(
                f"sequence {sequence} does not follow branch in {member!r}"
            )
        body.append(nd.assert_node(term.src1.index, expected, fault_target))
    raise AssertionError("unreachable")  # pragma: no cover


def _retarget_block(block: BasicBlock, mapping: Dict[str, str]) -> BasicBlock:
    """Redirect non-fault control transfers through ``mapping``.

    Assert fault targets must keep pointing at original blocks (recovery
    re-executes the original path), so asserts are left untouched.
    """
    body = [
        node if node.kind is NodeKind.ASSERT else node.retarget(mapping)
        for node in block.body
    ]
    terminator = block.terminator.retarget(mapping)
    return BasicBlock(block.label, body, terminator, block.origin)


def apply_plan(program: Program, plan: EnlargementPlan,
               reoptimize: bool = True) -> Program:
    """Apply an enlargement plan, returning the enlarged program.

    The result contains the enlarged blocks plus every original block
    (originals serve as fault-recovery paths; unreachable ones are
    removed).  Functional behaviour is preserved -- this is checked by
    property tests that compare program output before and after.
    """
    enlarged: List[BasicBlock] = []
    for sequence in plan.sequences:
        label = plan.entry_map[sequence[0]]
        enlarged.append(_build_enlarged_block(program, sequence, label))

    mapping = dict(plan.entry_map)
    mapping.pop(program.entry, None)  # the entry label must stay the entry

    all_blocks = [
        _retarget_block(block, mapping)
        for block in list(program) + enlarged
    ]
    result = Program(
        all_blocks,
        program.entry,
        data=program.data,
        data_size=program.data_size,
        symbols=program.symbols,
    )
    if reoptimize:
        liveness = compute_liveness(result)
        replacements = {}
        for block in result:
            optimized = optimize_block(block, liveness.live_out[block.label])
            replacements[block.label] = optimized
        result = result.replace_blocks(replacements)
    return remove_unreachable(result)


def enlarge_program(program: Program, profile, config=None) -> Program:
    """Plan and apply enlargement in one call."""
    from .plan import EnlargeConfig, plan_enlargement

    plan = plan_enlargement(program, profile, config or EnlargeConfig())
    return apply_plan(program, plan)
