"""repro: a reproduction of Melvin & Patt (ISCA 1991).

"Exploiting Fine-Grained Parallelism Through a Combination of Hardware
and Software Techniques" — dynamic scheduling, speculative execution and
basic block enlargement, evaluated over a 560-point machine configuration
space on five UNIX-utility benchmarks.

Quickstart::

    from repro import compile_source, run_program
    from repro.machine import prepare_workload, simulate, MachineConfig
    from repro.machine import Discipline, BranchMode

    program = compile_source(MINI_C_SOURCE)
    workload = prepare_workload("demo", program, {0: train}, {0: data})
    config = MachineConfig(
        discipline=Discipline.DYNAMIC, issue_model=8, memory="A",
        branch_mode=BranchMode.ENLARGED, window_blocks=4,
    )
    result = simulate(workload, config)
    print(result.retired_per_cycle)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced figures.
"""

from .lang.frontend import compile_source
from .interp.interpreter import run_program
from .machine.config import (
    BranchMode,
    Discipline,
    MachineConfig,
    full_configuration_space,
)
from .machine.simulator import PreparedWorkload, prepare_workload, simulate
from .program.program import Program
from .stats.results import SimResult

__version__ = "1.0.0"

__all__ = [
    "BranchMode",
    "Discipline",
    "MachineConfig",
    "PreparedWorkload",
    "Program",
    "SimResult",
    "compile_source",
    "full_configuration_space",
    "prepare_workload",
    "run_program",
    "simulate",
    "__version__",
]
