"""Shared benchmark fixtures.

Figure data is expensive (hundreds of timing simulations); results are
cached on disk (see repro.harness.cache), so re-runs only pay for points
not yet measured.  Each figure bench writes its table under
``benchmarks/results/`` and asserts the paper's shape claims.

Environment knobs:

* ``REPRO_BENCH_WORKLOADS`` -- comma-separated benchmark subset
* ``REPRO_BENCH_SCALE``     -- input-size multiplier (default 1)
* ``REPRO_CACHE_DIR``       -- result cache location
"""

from __future__ import annotations

import os

import pytest

from repro.harness import SweepRunner

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def runner():
    return SweepRunner(verbose=False)


def write_table(name: str, text: str) -> None:
    """Store a rendered figure table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
