"""Section 3.1: the static ALU-to-memory node ratio.

The paper: "The data from the translating loader on the benchmarks we
studied indicated that the static ratio of ALU to memory nodes was about
2.5 to one", which motivated the 2:1 and 3:1 issue-model shapes.
"""

from repro.harness.figures import static_ratio_data

from .conftest import run_once, write_table


def test_static_ratio(benchmark, runner):
    ratios = run_once(benchmark, lambda: static_ratio_data(runner))

    lines = ["Static ALU:MEM node ratio per benchmark"]
    for name, ratio in sorted(ratios.items()):
        lines.append(f"  {name:10s} {ratio:5.2f}")
    mean = sum(ratios.values()) / len(ratios)
    lines.append(f"  {'mean':10s} {mean:5.2f}   (paper: ~2.5)")
    write_table("static_ratio.txt", "\n".join(lines))

    # Around 2.5:1, loosely: the issue models' 2:1 and 3:1 ALU:MEM shapes
    # must be the right ballpark for this code.
    assert 1.5 < mean < 4.5
    for name, ratio in ratios.items():
        assert 1.0 < ratio < 6.0, name
