"""Figure 4: retired nodes/cycle vs memory configuration (issue model 8).

Paper claims checked here:

* all lines have fairly similar absolute slopes, so the higher lines lose
  a smaller *fraction* of their performance as memory slows (tolerance to
  memory latency correlates with performance);
* with a fully pipelined memory system, tripling the latency (A -> C) is
  far from a 3x slowdown;
* the low-locality dip: constant 2-cycle memory (B) can beat a 1-cycle
  1K cache (D) for some benchmarks.
"""

from repro.harness.figures import figure4_data, render_series_table

from .conftest import run_once, write_table


def test_figure4(benchmark, runner):
    data = run_once(benchmark, lambda: figure4_data(runner))
    memories = data["_memories"]

    table = render_series_table(
        "Figure 4: geometric-mean retired nodes/cycle vs memory config "
        "(issue model 8)",
        memories,
        data,
    )
    write_table("figure4.txt", table)

    index_a = memories.index("A")
    index_c = memories.index("C")

    lines = {k: v for k, v in data.items() if not k.startswith("_")}
    for label, series in lines.items():
        # Faster memory is never worse.
        assert series[index_a] >= series[index_c] * 0.99, label
        # Tripling latency costs far less than 3x (pipelined memory).
        assert series[index_c] > series[index_a] / 2.5, label

    # Fractional loss of the best line <= fractional loss of the worst
    # line (plus slack): high performance implies latency tolerance.
    best = max(lines.values(), key=lambda s: s[index_a])
    worst = min(lines.values(), key=lambda s: s[index_a])
    best_drop = 1 - best[index_c] / best[index_a]
    worst_drop = 1 - worst[index_c] / worst[index_a]
    assert best_drop <= worst_drop + 0.25
