"""Figure 3: retired nodes/cycle vs issue model (memory config A).

Paper claims checked here:

* performance variation among schemes is low for narrow words and large
  for wide words;
* basic block enlargement benefits every scheduling discipline (at wide
  issue);
* dynamic scheduling with window 1 lands near static scheduling;
* window 4 comes close to window 256;
* combining enlargement and dynamic scheduling beats either alone;
* realistic wide configurations reach speedups of roughly three to six
  over the sequential machine.
"""

from repro.harness.figures import figure3_data, render_series_table

from .conftest import run_once, write_table


def test_figure3(benchmark, runner):
    data = run_once(benchmark, lambda: figure3_data(runner))

    table = render_series_table(
        "Figure 3: geometric-mean retired nodes/cycle vs issue model (memory A)",
        [str(m) for m in data["_issue_models"]],
        data,
    )
    write_table("figure3.txt", table)

    wide = {label: series[-1] for label, series in data.items()
            if not label.startswith("_")}
    narrow = {label: series[1] for label, series in data.items()
              if not label.startswith("_")}

    # Variation grows with width.
    spread_narrow = max(narrow.values()) / min(narrow.values())
    spread_wide = max(wide.values()) / min(wide.values())
    assert spread_wide > spread_narrow

    # Enlargement helps every discipline at wide issue.
    for base in ("static", "dyn4", "dyn256"):
        assert wide[f"{base}/enlarged"] > wide[f"{base}/single"]

    # Window 1 is in the neighbourhood of static scheduling.
    assert 0.5 < wide["dyn1/single"] / wide["static/single"] < 2.0

    # Window 4 comes close to window 256 (well within 2x).
    assert wide["dyn4/enlarged"] > 0.6 * wide["dyn256/enlarged"]

    # Both mechanisms together beat either alone.
    assert wide["dyn256/enlarged"] > wide["dyn256/single"]
    assert wide["dyn256/enlarged"] > wide["static/enlarged"]

    # Speedups of three to six on realistic processors (vs sequential).
    sequential_baseline = data["static/single"][0]
    speedup = wide["dyn256/enlarged"] / sequential_baseline
    assert 2.5 < speedup < 12.0

    # Perfect prediction bounds the realistic lines from above.
    assert wide["dyn256/perfect"] >= wide["dyn256/enlarged"] * 0.95
