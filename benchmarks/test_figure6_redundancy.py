"""Figure 6: operation redundancy (discarded/executed) vs issue model.

Paper claims checked here:

* ordering is roughly the inverse of Figure 3 -- the higher-performing
  machines throw away more operations;
* dynamic window 256 with enlarged blocks discards a large fraction of
  executed nodes (the paper: nearly one of four);
* window 1 discards essentially nothing (no room to speculate);
* perfect prediction eliminates wrong-path work, leaving only the
  enlarged blocks' fault discards.
"""

from repro.harness.figures import figure3_data, figure6_data, render_series_table

from .conftest import run_once, write_table


def test_figure6(benchmark, runner):
    data = run_once(benchmark, lambda: figure6_data(runner))

    table = render_series_table(
        "Figure 6: mean redundancy (discarded / executed) vs issue model "
        "(memory A)",
        [str(m) for m in data["_issue_models"]],
        data,
        value_format="{:7.4f}",
    )
    write_table("figure6.txt", table)

    wide = {label: series[-1] for label, series in data.items()
            if not label.startswith("_")}

    # Window 1 cannot speculate across blocks.
    assert wide["dyn1/single"] < 0.01

    # The top-performing configuration pays the highest redundancy;
    # paper: "nearly one out of every four nodes executed".
    assert 0.08 < wide["dyn256/enlarged"] < 0.45

    # Higher window -> more redundancy, single blocks.
    assert wide["dyn256/single"] >= wide["dyn4/single"] >= wide["dyn1/single"]

    # Inverse correlation with Figure 3 (rank correlation < 0 over the
    # realistic dynamic lines).
    perf = figure3_data(runner)  # served from the result cache
    labels = [l for l in wide if not l.endswith("perfect")]
    perf_rank = sorted(labels, key=lambda l: perf[l][-1])
    red_rank = sorted(labels, key=lambda l: wide[l])
    # Spearman-style check: the most redundant is among the fastest.
    most_redundant = red_rank[-1]
    assert perf_rank.index(most_redundant) >= len(labels) - 3

    # Perfect prediction discards less than realistic prediction.
    assert wide["dyn256/perfect"] <= wide["dyn256/enlarged"]
