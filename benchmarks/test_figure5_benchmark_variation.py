"""Figure 5: per-benchmark variation across composite configurations.

Fourteen (issue model, memory) composites slice diagonally through the
8x7 matrix; the discipline is dynamic scheduling, window 4, enlarged
blocks.  Paper claims checked here:

* the percentage variation among benchmarks grows with word width;
* several benchmarks dip from composite 5B to 5D (a small 1K cache with
  low locality is worse than constant 2-cycle memory).
"""

from repro.harness.figures import figure5_data, render_series_table

from .conftest import run_once, write_table


def test_figure5(benchmark, runner):
    data = run_once(benchmark, lambda: figure5_data(runner))
    composites = data["_composites"]

    table = render_series_table(
        "Figure 5: per-benchmark retired nodes/cycle, dyn window 4 + "
        "enlarged blocks",
        composites,
        data,
    )
    write_table("figure5.txt", table)

    series = {k: v for k, v in data.items() if not k.startswith("_")}
    assert len(series) == len(runner.benchmarks)

    def spread(index):
        values = [s[index] for s in series.values()]
        return max(values) / max(min(values), 1e-9)

    # Variation is higher for wide multinodewords than narrow ones.
    narrow_spread = spread(0)
    wide_spread = max(spread(len(composites) - 1), spread(len(composites) - 2))
    assert wide_spread > narrow_spread * 0.9

    # The 5B -> 5D locality dip appears for at least one benchmark.
    index_5b = composites.index("5B")
    index_5d = composites.index("5D")
    dips = sum(1 for s in series.values() if s[index_5d] < s[index_5b])
    assert dips >= 1
