"""Figure-reproduction and ablation benchmarks (pytest-benchmark)."""
