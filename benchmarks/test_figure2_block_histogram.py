"""Figure 2: basic block size histograms, single vs enlarged.

Paper claims: original basic blocks are small with a highly skewed
distribution -- over half of all executed blocks are 0-4 nodes -- and
enlargement makes the curve much flatter.
"""

from repro.harness.figures import figure2_data, render_series_table

from .conftest import run_once, write_table


def test_figure2(benchmark, runner):
    data = run_once(benchmark, lambda: figure2_data(runner))

    table = render_series_table(
        "Figure 2: fraction of executed basic blocks per size bucket",
        data["buckets"],
        {"single": data["single"], "enlarged": data["enlarged"]},
        value_format="{:6.3f}",
    )
    write_table("figure2.txt", table)

    single = data["single"]
    enlarged = data["enlarged"]
    # "Over half of all basic blocks executed are between 0 and 4 nodes."
    assert single[0] > 0.40
    # Enlargement flattens the curve: far fewer tiny blocks...
    assert enlarged[0] < single[0] * 0.8
    # ...and much more weight in the tail.
    assert sum(enlarged[2:]) > sum(single[2:])

    def mean_bucket(fracs):
        return sum(i * f for i, f in enumerate(fracs))

    assert mean_bucket(enlarged) > mean_bucket(single)
