"""Ablations beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* window-size sweep at a finer grain than the paper's {1, 4, 256};
* branch predictor family (the paper conjectures "more sophisticated
  techniques could yield better prediction");
* static-hint supplement on/off;
* enlargement thresholds (arc ratio / cumulative retire probability).

Run on a two-benchmark subset (grep, sort) to keep cost proportionate.
"""

import pytest

from repro.enlarge.plan import EnlargeConfig
from repro.harness import SweepRunner, render_series_table
from repro.machine.config import BranchMode, Discipline, MachineConfig
from repro.machine.simulator import simulate
from repro.workloads import WORKLOADS

from .conftest import run_once, write_table

ABLATION_BENCHMARKS = ("grep", "sort")
WINDOWS = (1, 2, 4, 8, 16, 64, 256)
PREDICTORS = ("nottaken", "taken", "static", "onebit", "twobit", "gshare")


@pytest.fixture(scope="module")
def ablation_runner():
    return SweepRunner(benchmarks=list(ABLATION_BENCHMARKS))


def config(window=4, mode=BranchMode.ENLARGED, predictor="twobit",
           hints=True, issue=8, memory="A"):
    return MachineConfig(
        discipline=Discipline.DYNAMIC,
        issue_model=issue,
        memory=memory,
        branch_mode=mode,
        window_blocks=window,
        static_hints=hints,
        predictor=predictor,
    )


def test_window_sweep(benchmark, ablation_runner):
    def sweep():
        return {
            "dyn/enlarged": [
                ablation_runner.mean_ipc(config(window=w)) for w in WINDOWS
            ],
            "dyn/single": [
                ablation_runner.mean_ipc(config(window=w, mode=BranchMode.SINGLE))
                for w in WINDOWS
            ],
        }

    data = run_once(benchmark, sweep)
    table = render_series_table(
        "Ablation: window size sweep (issue model 8, memory A)",
        [str(w) for w in WINDOWS],
        data,
    )
    write_table("ablation_window.txt", table)

    series = data["dyn/enlarged"]
    # Monotone non-decreasing IPC with window size (small tolerance).
    for before, after in zip(series, series[1:]):
        assert after >= before * 0.97
    # Diminishing returns: the first quadrupling (1 -> 4) buys more than
    # the last (64 -> 256).
    first_gain = series[2] - series[0]
    last_gain = series[-1] - series[-2]
    assert first_gain > last_gain


def test_predictor_ablation(benchmark, ablation_runner):
    def sweep():
        ipc = {}
        accuracy = {}
        for kind in PREDICTORS:
            results = [
                ablation_runner.run_point(name, config(predictor=kind))
                for name in ABLATION_BENCHMARKS
            ]
            ipc[kind] = sum(r.retired_per_cycle for r in results) / len(results)
            accuracy[kind] = sum(r.branch_accuracy for r in results) / len(results)
        return ipc, accuracy

    ipc, accuracy = run_once(benchmark, sweep)
    table = render_series_table(
        "Ablation: branch predictor family (dyn4/enlarged, issue 8, memory A)",
        PREDICTORS,
        {"IPC": [ipc[k] for k in PREDICTORS],
         "accuracy": [accuracy[k] for k in PREDICTORS]},
        value_format="{:7.4f}",
    )
    write_table("ablation_predictor.txt", table)

    # The 2-bit counter beats static-only and 1-bit schemes.
    assert accuracy["twobit"] >= accuracy["onebit"] - 0.02
    assert accuracy["twobit"] > accuracy["nottaken"]
    # gshare (post-paper) is at least as accurate as the 2-bit counter,
    # supporting the paper's better-prediction conjecture.
    assert accuracy["gshare"] >= accuracy["twobit"] - 0.02
    # Better prediction translates into performance.
    assert ipc["twobit"] > ipc["nottaken"]


def test_static_hints_ablation(benchmark, ablation_runner):
    def sweep():
        with_hints = [
            ablation_runner.run_point(name, config(hints=True))
            for name in ABLATION_BENCHMARKS
        ]
        without = [
            ablation_runner.run_point(name, config(hints=False))
            for name in ABLATION_BENCHMARKS
        ]
        return with_hints, without

    with_hints, without = run_once(benchmark, sweep)
    rows = {
        "with hints": [r.branch_accuracy for r in with_hints],
        "without": [r.branch_accuracy for r in without],
    }
    table = render_series_table(
        "Ablation: static-hint supplement (branch accuracy)",
        list(ABLATION_BENCHMARKS),
        rows,
        value_format="{:7.4f}",
    )
    write_table("ablation_hints.txt", table)

    # Hints only matter on cold branches, so the effect is small but
    # must never hurt on these profile-matched inputs.
    total_with = sum(r.mispredicts for r in with_hints)
    total_without = sum(r.mispredicts for r in without)
    assert total_with <= total_without * 1.05


def test_enlargement_threshold_ablation(benchmark):
    """Stricter arc thresholds trade block size against fault rate."""
    configs = {
        "aggressive": EnlargeConfig(min_arc_ratio=0.55, min_cum_ratio=0.10),
        "default": EnlargeConfig(),
        "conservative": EnlargeConfig(min_arc_ratio=0.92, min_cum_ratio=0.75),
    }

    def sweep():
        stats = {}
        for name, enlarge_config in configs.items():
            workload = WORKLOADS["grep"].prepare(enlarge_config=enlarge_config)
            result = simulate(workload, config(window=4))
            trace = workload.enlarged_trace
            faults = sum(1 for f in trace.fault_indices if f >= 0)
            stats[name] = {
                "ipc": result.retired_per_cycle,
                "fault_rate": faults / max(len(trace), 1),
                "redundancy": result.redundancy,
            }
        return stats

    stats = run_once(benchmark, sweep)
    names = list(configs)
    table = render_series_table(
        "Ablation: enlargement thresholds (grep, dyn4/enlarged)",
        names,
        {
            "IPC": [stats[n]["ipc"] for n in names],
            "fault rate": [stats[n]["fault_rate"] for n in names],
            "redundancy": [stats[n]["redundancy"] for n in names],
        },
        value_format="{:7.4f}",
    )
    write_table("ablation_enlargement.txt", table)

    # Stricter thresholds monotonically reduce the fault rate.
    assert (
        stats["conservative"]["fault_rate"]
        <= stats["default"]["fault_rate"]
        <= stats["aggressive"]["fault_rate"] + 1e-9
    )
    # There is an interior optimum: the default beats at least one extreme
    # (the paper: "there is an optimal point between the enlargement of
    # basic blocks and the use of dynamic scheduling").
    assert stats["default"]["ipc"] >= min(
        stats["aggressive"]["ipc"], stats["conservative"]["ipc"]
    )


def test_wider_words_extension(benchmark, ablation_runner):
    """Beyond the paper: issue models 9 (8M+24A) and 10 (16M+48A).

    The paper conjectures "even more parallelism could be exploited with
    more paths to memory"; this extension quantifies how much of that
    holds for realistic vs perfect prediction.
    """
    models = (7, 8, 9, 10)

    def sweep():
        return {
            "dyn256/enlarged": [
                ablation_runner.mean_ipc(config(window=256, issue=m))
                for m in models
            ],
            "dyn256/perfect": [
                ablation_runner.mean_ipc(
                    config(window=256, issue=m, mode=BranchMode.PERFECT)
                )
                for m in models
            ],
        }

    data = run_once(benchmark, sweep)
    table = render_series_table(
        "Ablation: wider multinodewords (extension models 9 and 10)",
        [str(m) for m in models],
        data,
    )
    write_table("ablation_wide_words.txt", table)

    realistic = data["dyn256/enlarged"]
    perfect = data["dyn256/perfect"]
    # Wider words never hurt.
    assert realistic[-1] >= realistic[0] * 0.97
    # The realistic line saturates: the last doubling gains less than
    # the 7 -> 8 step did, relative to width.
    assert realistic[-1] - realistic[-2] <= (realistic[1] - realistic[0]) + 0.5
    # Perfect prediction keeps scaling better than realistic prediction,
    # i.e. the prediction gap widens with width.
    gap_narrow = perfect[0] - realistic[0]
    gap_wide = perfect[-1] - realistic[-1]
    assert gap_wide >= gap_narrow * 0.8


def test_fill_unit_vs_profile_enlargement(benchmark):
    """Extension: run-time (fill unit) vs compile-time (profile) units.

    The paper enlarges offline from profile data but floats "possibly a
    hardware unit"; its [MeSP88] reference describes the fill unit this
    compares against.  Run-time units are built from the *training* trace
    only (warm-up), then evaluated on the evaluation input like the
    offline flow.
    """
    from repro.enlarge import fill_unit_enlarge
    from repro.interp import run_program
    from repro.machine.simulator import PreparedWorkload

    def sweep():
        stats = {}
        workload = WORKLOADS["grep"]
        program = workload.compile()
        train = workload.make_inputs("train")
        eval_inputs = workload.make_inputs("eval")

        # Offline (paper) flow, via the standard preparation.
        offline = workload.prepare()
        offline_result = simulate(offline, config(window=4))
        stats["profile (offline)"] = offline_result.retired_per_cycle

        # Run-time flow: observe the training trace, build units, trace
        # the enlarged program on the evaluation input.
        observed = run_program(program, inputs=train)
        enlarged = fill_unit_enlarge(program, observed.trace)
        single_eval = run_program(program, inputs=eval_inputs)
        enlarged_eval = run_program(enlarged, inputs=eval_inputs)
        assert enlarged_eval.output == single_eval.output
        runtime_wl = PreparedWorkload(
            "grep-fill", program, enlarged,
            single_eval.trace, enlarged_eval.trace,
        )
        runtime_result = simulate(runtime_wl, config(window=4))
        stats["fill unit (runtime)"] = runtime_result.retired_per_cycle

        # Baseline without any enlargement.
        stats["single blocks"] = simulate(
            offline, config(window=4, mode=BranchMode.SINGLE)
        ).retired_per_cycle
        return stats

    stats = run_once(benchmark, sweep)
    names = list(stats)
    table = render_series_table(
        "Ablation: offline vs run-time enlargement (grep, dyn4, issue 8)",
        names,
        {"IPC": [stats[n] for n in names]},
    )
    write_table("ablation_fill_unit.txt", table)

    # Both enlargement styles must beat single blocks at wide issue.
    assert stats["profile (offline)"] > stats["single blocks"]
    assert stats["fill unit (runtime)"] > stats["single blocks"]
